"""The linter lints itself honest: per-rule fixtures + live-tree check.

Each rule gets at least one positive fixture (the hazard, caught) and
one negative fixture (the sanctioned idiom, silent).  Fixture trees are
laid out as ``<tmp>/repro/...`` so module-scoped rules resolve the same
dotted names they see in the real checkout.  The suite ends by linting
the live ``src/`` tree against the committed baseline — the same gate CI
runs — so a rule regression and a code regression both fail here first.
"""

import importlib.util
import json
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.devtools import rules as R
from repro.devtools.lint import (
    DEFAULT_BASELINE,
    Baseline,
    main,
    run_lint,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_tree(tmp_path, files, rule=None, baseline=None):
    """Write ``{relpath: source}`` under tmp_path and lint the tree."""
    for rel, text in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text))
    rules = None if rule is None else [rule]
    return run_lint([tmp_path], rules=rules, baseline=baseline)


def messages(result):
    return [f"{f.rule}: {f.message}" for f in result.findings]


# --- determinism rules ------------------------------------------------------


class TestWallClock:
    def test_flags_wall_clock_in_core(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/core/thing.py": """
                import time

                def stamp():
                    return time.time()
                """
            },
            rule=R.WallClockRule(),
        )
        assert len(result.findings) == 1
        assert "time.time" in result.findings[0].message

    def test_flags_datetime_now_via_from_import(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/core/thing.py": """
                from datetime import datetime

                def stamp():
                    return datetime.now()
                """
            },
            rule=R.WallClockRule(),
        )
        assert len(result.findings) == 1

    def test_perf_counter_and_experiments_allowed(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/core/telemetry.py": """
                import time

                def elapsed(t0):
                    return time.perf_counter() - t0
                """,
                "repro/experiments/bench.py": """
                import time

                def stamp():
                    return time.time()
                """,
            },
            rule=R.WallClockRule(),
        )
        assert result.clean


class TestGlobalRng:
    def test_flags_stdlib_and_legacy_numpy_draws(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/sim/thing.py": """
                import random

                import numpy as np

                def jitter():
                    np.random.seed(0)
                    return random.random()
                """
            },
            rule=R.GlobalRngRule(),
        )
        assert len(result.findings) == 2

    def test_seeded_generators_allowed(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/sim/thing.py": """
                import random

                import numpy as np

                def jitter(seed):
                    rng = np.random.default_rng(seed)
                    local = random.Random(seed)
                    return rng.random() + local.random()
                """
            },
            rule=R.GlobalRngRule(),
        )
        assert result.clean


class TestUnorderedIter:
    def test_flags_set_iteration_in_emission_scope(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/core/unify/thing.py": """
                def emit(items):
                    seen = set(items)
                    out = []
                    for x in seen:
                        out.append(x)
                    return [y for y in {1, 2, 3}] + out
                """
            },
            rule=R.UnorderedIterRule(),
        )
        assert len(result.findings) == 2

    def test_sorted_wrapper_and_out_of_scope_allowed(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/core/unify/thing.py": """
                def emit(items):
                    seen = set(items)
                    return [x for x in sorted(seen)]
                """,
                "repro/sim/thing.py": """
                def anywhere(items):
                    return [x for x in set(items)]
                """,
            },
            rule=R.UnorderedIterRule(),
        )
        assert result.clean

    def test_rebinding_clears_the_taint(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/core/sync/thing.py": """
                def emit(items):
                    seen = set(items)
                    seen = sorted(seen)
                    return [x for x in seen]
                """
            },
            rule=R.UnorderedIterRule(),
        )
        assert result.clean


class TestStreamDiscipline:
    def test_flags_unknown_and_non_literal_stream_names(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/sim/runner.py": """
                def setup(streams, which):
                    streams.component("weather")
                    streams.component(which)
                """
            },
            rule=R.StreamDisciplineRule(),
        )
        assert len(result.findings) == 2
        assert any("unknown scenario stream" in m for m in messages(result))
        assert any("string literal" in m for m in messages(result))

    def test_flags_two_streams_in_one_function(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/sim/runner.py": """
                def setup(streams):
                    a = streams.component("roam")
                    b = streams.entity("arrival", 3)
                    return a, b
                """
            },
            rule=R.StreamDisciplineRule(),
        )
        assert len(result.findings) == 1
        assert "exactly one spawn-keyed stream" in result.findings[0].message

    def test_single_declared_stream_allowed(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/sim/runner.py": """
                def arrivals(streams, station):
                    return streams.entity("arrival", station)
                """
            },
            rule=R.StreamDisciplineRule(),
        )
        assert result.clean

    def test_keys_collected_from_scenario_module(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/sim/scenario.py": """
                _STREAM_KEYS = {"weather": 17}
                """,
                "repro/sim/runner.py": """
                def setup(streams):
                    return streams.component("weather")
                """,
            },
            rule=R.StreamDisciplineRule(),
        )
        assert result.clean


# --- pool safety ------------------------------------------------------------


class TestPoolCallable:
    def test_flags_lambda_and_local_def_submissions(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/core/thing.py": """
                from concurrent.futures import ProcessPoolExecutor

                def run(shards):
                    def work(shard):
                        return shard

                    with ProcessPoolExecutor() as pool:
                        a = pool.submit(lambda: 1)
                        b = pool.submit(work, shards[0])
                    return a, b
                """
            },
            rule=R.PoolCallableRule(),
        )
        assert len(result.findings) == 2

    def test_flags_lambda_hiding_in_payload(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/core/thing.py": """
                from repro.core.faults import map_shards_with_recovery

                def work(shard, key):
                    return shard

                def run(shards):
                    return map_shards_with_recovery(
                        work, [(shards[0], lambda x: x)], max_workers=2
                    )
                """
            },
            rule=R.PoolCallableRule(),
        )
        assert len(result.findings) == 1

    def test_module_level_callable_allowed(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/core/thing.py": """
                from concurrent.futures import ProcessPoolExecutor

                def work(shard):
                    return shard

                def run(shards):
                    with ProcessPoolExecutor() as pool:
                        return pool.submit(work, shards[0])
                """
            },
            rule=R.PoolCallableRule(),
        )
        assert result.clean

    def test_flags_merge_tree_lambda_leaf_runner(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/core/thing.py": """
                from repro.core.unify.hierarchy import MergeTree

                def run(traces, bootstrap):
                    def leaf(unifier, shard, boot):
                        return shard

                    bad_a = MergeTree(leaf_runner=lambda u, s, b: s)
                    bad_b = MergeTree(max_workers=2, leaf_runner=leaf)
                    return bad_a, bad_b
                """
            },
            rule=R.PoolCallableRule(),
        )
        assert len(result.findings) == 2

    def test_merge_tree_module_level_leaf_runner_allowed(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/core/thing.py": """
                from repro.core.unify.hierarchy import MergeTree

                def leaf(unifier, shard, boot):
                    return shard

                def run(traces, bootstrap):
                    return MergeTree(leaf_runner=leaf).unify(
                        traces, bootstrap
                    )
                """
            },
            rule=R.PoolCallableRule(),
        )
        assert result.clean


class TestPoolTimeout:
    def test_flags_bare_result_when_futures_imported(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/core/thing.py": """
                from concurrent.futures import ProcessPoolExecutor

                def run(pool, fn):
                    return pool.submit(fn).result()
                """
            },
            rule=R.PoolTimeoutRule(),
        )
        assert len(result.findings) == 1

    def test_timeout_and_non_pool_modules_allowed(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/core/pooly.py": """
                from concurrent.futures import ProcessPoolExecutor

                def run(pool, fn, deadline):
                    return pool.submit(fn).result(timeout=deadline)
                """,
                "repro/core/plain.py": """
                def run(scanner):
                    return scanner.result()
                """,
            },
            rule=R.PoolTimeoutRule(),
        )
        assert result.clean


# --- error policy -----------------------------------------------------------


class TestErrorPolicy:
    def test_flags_bare_except_anywhere(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/sim/thing.py": """
                def guard(fn):
                    try:
                        return fn()
                    except:
                        return None
                """
            },
            rule=R.ErrorPolicyRule(),
        )
        assert len(result.findings) == 1
        assert "bare except" in result.findings[0].message

    def test_flags_swallowed_exception_in_ledger_module(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/core/faults.py": """
                def salvage(future):
                    try:
                        return future.peek()
                    except ValueError:
                        pass
                """
            },
            rule=R.ErrorPolicyRule(),
        )
        assert len(result.findings) == 1
        assert "health-ledger" in result.findings[0].message

    def test_counted_or_logged_handlers_allowed(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/core/faults.py": """
                def salvage(future, health):
                    try:
                        return future.peek()
                    except ValueError:
                        health.worker_crashes += 1
                        return None
                """,
                "repro/sim/thing.py": """
                def probe(fn):
                    try:
                        return fn()
                    except OSError:
                        pass
                """,
            },
            rule=R.ErrorPolicyRule(),
        )
        assert result.clean


# --- struct-format consistency ----------------------------------------------


STRUCT_DECL = """
import struct

_H = struct.Struct("<HH")
"""


class TestStructConsistency:
    def test_flags_arity_and_range_drift(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/jtrace/records.py": STRUCT_DECL,
                "repro/jtrace/io.py": """
                import struct

                from .records import _H

                def roundtrip(buf):
                    payload = _H.pack(1, 2, 3)
                    a, b, c = _H.unpack(buf)
                    tail = _H.unpack_from(buf, 0)[5]
                    return payload, a, b, c, tail
                """,
            },
            rule=R.StructConsistencyRule(),
        )
        assert len(result.findings) == 3
        joined = "\n".join(messages(result))
        assert "pack() called with 3 value(s)" in joined
        assert "unpacked into 3 name(s)" in joined
        assert "[5] is out of range" in joined

    def test_flags_invalid_format_literal(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/jtrace/io.py": """
                import struct

                def bad():
                    return struct.calcsize("<Q!")
                """
            },
            rule=R.StructConsistencyRule(),
        )
        assert len(result.findings) == 1
        assert "invalid struct format" in result.findings[0].message

    def test_consistent_uses_allowed(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/jtrace/records.py": STRUCT_DECL,
                "repro/jtrace/io.py": """
                from .records import _H

                def roundtrip(buf):
                    payload = _H.pack(1, 2)
                    a, b = _H.unpack(buf)
                    return payload, a, _H.unpack_from(buf, 0)[1]
                """,
            },
            rule=R.StructConsistencyRule(),
        )
        assert result.clean

    def test_flags_iter_unpack_loop_arity_drift(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/jtrace/records.py": STRUCT_DECL,
                "repro/jtrace/io.py": """
                from .records import _H

                def drain(buf):
                    out = []
                    for a, b, c in _H.iter_unpack(buf):
                        out.append((a, b, c))
                    for a, b in _H.iter_unpack(buf):
                        out.append((a, b))
                    return out
                """,
            },
            rule=R.StructConsistencyRule(),
        )
        assert len(result.findings) == 1
        assert "iter_unpack() loop unpacks 3 name(s)" in (
            result.findings[0].message
        )

    def test_flags_structured_dtype_field_count_drift(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/jtrace/records.py": """
                import struct

                _np = None

                _H = struct.Struct("<HH")
                _H_DTYPE = _np.dtype([
                    ("first", "<u2"),
                    ("second", "<u2"),
                    ("third", "<u2"),
                ])
                """,
            },
            rule=R.StructConsistencyRule(),
        )
        # 3 dtype fields vs 2 struct fields, and 6 bytes vs 4.
        assert len(result.findings) == 2
        joined = "\n".join(messages(result))
        assert "declares 3 field(s)" in joined
        assert "spans 6 byte(s)" in joined

    def test_matching_structured_dtype_allowed(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/jtrace/records.py": """
                import struct

                _np = None

                _H = struct.Struct("<Hq")
                _H_DTYPE = _np.dtype([
                    ("first", "<u2"),
                    ("second", "<i8"),
                ])
                _OTHER_DTYPE = _np.dtype([("lone", "<u4")])
                """,
            },
            rule=R.StructConsistencyRule(),
        )
        assert result.clean


# --- PipelinePass conformance -----------------------------------------------


class TestPassConformance:
    def test_flags_typo_hooks_and_bad_signatures(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/core/mypasses.py": """
                from repro.core.passes import PipelinePass

                class Broken(PipelinePass):
                    name = "broken"

                    def on_jframes(self, jframe):
                        return None

                    def on_attempt(self, attempt, extra):
                        return None

                    def on_flow(self, **kwargs):
                        return None
                """
            },
            rule=R.PassConformanceRule(),
        )
        joined = "\n".join(messages(result))
        assert "on_jframes" in joined and "never call it" in joined
        assert "on_attempt takes 3" in joined
        assert "must not use *args/**kwargs" in joined

    def test_transitive_subclasses_checked(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/core/base.py": """
                from repro.core.passes import PipelinePass

                class Mid(PipelinePass):
                    name = "mid"
                """,
                "repro/core/leaf.py": """
                from .base import Mid

                class Leaf(Mid):
                    name = "leaf"

                    def on_exchanges(self, exchange):
                        return None
                """,
            },
            rule=R.PassConformanceRule(),
        )
        assert len(result.findings) == 1
        assert "Leaf.on_exchanges" in result.findings[0].message

    def test_conforming_pass_allowed(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/core/mypasses.py": """
                from repro.core.passes import PipelinePass

                class Counter(PipelinePass):
                    name = "counter"

                    def __init__(self):
                        self.n = 0

                    def on_jframe(self, jframe):
                        self.n += 1

                    def finish(self, context):
                        return self.n
                """
            },
            rule=R.PassConformanceRule(),
        )
        assert result.clean


# --- generic hygiene --------------------------------------------------------


class TestMutableDefault:
    def test_flags_literal_and_constructor_defaults(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/sim/thing.py": """
                def collect(into=[], index=dict()):
                    return into, index
                """
            },
            rule=R.MutableDefaultRule(),
        )
        assert len(result.findings) == 2

    def test_none_default_allowed(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/sim/thing.py": """
                def collect(into=None):
                    return [] if into is None else into
                """
            },
            rule=R.MutableDefaultRule(),
        )
        assert result.clean


class TestTypedApi:
    def test_flags_untyped_defs_in_strict_module(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/core/passes.py": """
                def run_passes(report, passes):
                    return None
                """
            },
            rule=R.TypedApiRule(),
        )
        assert len(result.findings) == 2  # parameters + return
        joined = "\n".join(messages(result))
        assert "report, passes unannotated" in joined
        assert "no return annotation" in joined

    def test_annotated_defs_and_lenient_modules_allowed(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/core/passes.py": """
                from typing import Any

                class PassContext:
                    def describe(self, verbose: bool = False) -> str:
                        return "ctx"

                def run_passes(report: Any) -> None:
                    return None
                """,
                "repro/sim/loose.py": """
                def helper(x):
                    return x
                """,
            },
            rule=R.TypedApiRule(),
        )
        assert result.clean


# --- engine mechanics: suppressions, baseline, CLI --------------------------


class TestSuppressions:
    def test_targeted_and_bare_ignores(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/core/thing.py": """
                import time

                def stamp():
                    return time.time()  # repro: ignore[wall-clock]

                def stamp2():
                    return time.time()  # repro: ignore
                """
            },
            rule=R.WallClockRule(),
        )
        assert result.clean
        assert result.suppressed == 2

    def test_ignore_for_other_rule_does_not_apply(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/core/thing.py": """
                import time

                def stamp():
                    return time.time()  # repro: ignore[pool-timeout]
                """
            },
            rule=R.WallClockRule(),
        )
        assert len(result.findings) == 1
        assert result.suppressed == 0


class TestBaseline:
    FILES = {
        "repro/core/thing.py": """
        import time

        def stamp():
            return time.time()
        """
    }

    def test_baselined_finding_does_not_fail(self, tmp_path):
        first = lint_tree(tmp_path, self.FILES, rule=R.WallClockRule())
        assert len(first.findings) == 1
        baseline = Baseline(
            entries=[Baseline.entry_for(first.findings[0], "pre-existing")]
        )
        second = run_lint(
            [tmp_path], rules=[R.WallClockRule()], baseline=baseline
        )
        assert second.clean
        assert len(second.baselined) == 1
        assert not second.stale_baseline

    def test_fixed_debt_surfaces_as_stale(self, tmp_path):
        first = lint_tree(tmp_path, self.FILES, rule=R.WallClockRule())
        baseline = Baseline(
            entries=[Baseline.entry_for(first.findings[0], "pre-existing")]
        )
        (tmp_path / "repro/core/thing.py").write_text(
            "def stamp():\n    return 0\n"
        )
        second = run_lint(
            [tmp_path], rules=[R.WallClockRule()], baseline=baseline
        )
        assert second.clean
        assert len(second.stale_baseline) == 1


class TestCli:
    def write_dirty(self, tmp_path):
        target = tmp_path / "repro/core/thing.py"
        target.parent.mkdir(parents=True)
        target.write_text("import time\n\nT = time.time()\n")

    def test_exit_codes(self, tmp_path, capsys):
        self.write_dirty(tmp_path)
        assert main([str(tmp_path), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "wall-clock" in out
        assert main([str(tmp_path / "missing")]) == 2
        assert main(["--rule", "no-such-rule", str(tmp_path)]) == 2
        assert main(["--list-rules"]) == 0

    def test_json_output(self, tmp_path, capsys):
        self.write_dirty(tmp_path)
        assert main([str(tmp_path), "--no-baseline", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files"] == 1
        assert payload["findings"][0]["rule"] == "wall-clock"
        assert payload["findings"][0]["path"].endswith("thing.py")

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        self.write_dirty(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        assert (
            main(
                [
                    str(tmp_path),
                    "--baseline",
                    str(baseline_path),
                    "--write-baseline",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert baseline_path.exists()
        assert (
            main([str(tmp_path), "--baseline", str(baseline_path)]) == 0
        )
        summary = capsys.readouterr().err
        assert "1 baselined" in summary


# --- the gate itself --------------------------------------------------------


class TestLiveTree:
    def test_src_is_clean_modulo_committed_baseline(self):
        baseline = Baseline.load(DEFAULT_BASELINE)
        result = run_lint([REPO_ROOT / "src"], baseline=baseline)
        assert result.clean, "\n".join(f.format() for f in result.findings)
        assert not result.stale_baseline, result.stale_baseline

    def test_rule_catalog_names_are_unique(self):
        names = [cls.name for cls in R.ALL_RULES]
        assert len(names) == len(set(names))


# --- optional external tools (installed in CI, maybe not locally) -----------


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    proc = subprocess.run(
        ["ruff", "check", "."],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None, reason="mypy not installed"
)
def test_mypy_clean():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
