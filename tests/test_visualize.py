"""Tests for the Figure 2 timeline visualization."""

import pytest

from repro.core.analysis.visualize import busiest_window, render_timeline
from repro.core.unify.jframe import Instance, JFrame, JFrameKind
from repro.dot11.address import MacAddress
from repro.dot11.frame import make_data
from repro.jtrace.records import RecordKind, TraceRecord

SRC = MacAddress.parse("00:0c:0c:00:00:01")
DST = MacAddress.parse("00:0a:0a:00:00:01")


def jframe_at(ts, radio_ids, kind=RecordKind.VALID):
    frame = make_data(SRC, DST, DST, seq=1, body=b"x")
    instances = []
    for radio_id in radio_ids:
        record = TraceRecord(
            radio_id=radio_id, timestamp_us=ts, kind=kind, channel=1,
            rate_mbps=11.0, rssi_dbm=-60.0, frame_len=10, fcs=0,
            snap=b"abcdef" if kind is not RecordKind.PHY_ERROR else b"",
            duration_us=100,
        )
        instances.append(Instance(radio_id, ts, float(ts), record))
    return JFrame(
        timestamp_us=ts,
        kind=JFrameKind.VALID if kind is RecordKind.VALID else JFrameKind.PHY_ERROR,
        channel=1, instances=instances, frame=frame, duration_us=100,
    )


class TestRenderTimeline:
    def test_rows_per_radio(self):
        frames = [jframe_at(1000, [0, 1, 2])]
        view = render_timeline(frames, 0, 2000, columns=20)
        assert len(view.rows) == 3
        assert all("#" in row for row in view.rows)

    def test_simultaneous_receptions_share_column(self):
        frames = [jframe_at(1000, [0, 1])]
        view = render_timeline(frames, 0, 2000, columns=40)
        col0 = view.rows[0].index("#")
        col1 = view.rows[1].index("#")
        assert col0 == col1

    def test_markers_by_kind(self):
        frames = [
            jframe_at(500, [0]),
            jframe_at(1500, [1], kind=RecordKind.PHY_ERROR),
        ]
        view = render_timeline(frames, 0, 2000, columns=40)
        text = str(view)
        assert "#" in text and "." in text and "legend" in text

    def test_window_filtering(self):
        frames = [jframe_at(1000, [0]), jframe_at(9000, [0])]
        view = render_timeline(frames, 0, 2000, columns=20)
        assert "".join(view.rows).count("#") == 1

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            render_timeline([], 100, 100)

    def test_radio_cap(self):
        frames = [jframe_at(1000, list(range(50)))]
        view = render_timeline(frames, 0, 2000, max_radios=10)
        assert len(view.rows) == 10

    def test_explicit_radio_order(self):
        frames = [jframe_at(1000, [3, 7])]
        view = render_timeline(frames, 0, 2000, radios=[7, 3, 99])
        assert view.rows[0].startswith(" r7") or view.rows[0].startswith("r7")
        assert len(view.rows) == 3  # radio 99 renders an empty row


class TestBusiestWindow:
    def test_empty(self):
        assert busiest_window([], width_us=100) == (0, 100)

    def test_finds_cluster(self):
        sparse = [jframe_at(t, [0]) for t in (0, 100_000)]
        cluster = [jframe_at(50_000 + i * 10, [0, 1, 2]) for i in range(5)]
        frames = sorted(sparse + cluster, key=lambda jf: jf.timestamp_us)
        start, end = busiest_window(frames, width_us=1_000)
        assert 49_000 <= start <= 51_000
        assert end - start == 1_000
