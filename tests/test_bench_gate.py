"""Tests for the CI perf-regression gate (``benchmarks/check_regression.py``).

The gate is itself gate-keeping CI, so its edge cases get tests: the
historical bug was that a guarded metric *absent from the baseline*
printed "NEW ... skipped" and passed silently — a renamed section could
disable the whole gate without anyone noticing.  Absent sections are
now a visible WARN by default and a hard FAIL under
``--require-sections``.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_GATE_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_regression", _GATE_PATH)
check_regression = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_regression", check_regression)
_spec.loader.exec_module(check_regression)


def full_payload(scale=1.0):
    """A payload covering every guarded metric, optionally scaled."""
    payload = {}
    for dotted, _label in check_regression.GUARDED_METRICS:
        node = payload
        parts = dotted.split(".")
        for part in parts[:-1]:
            node = node.setdefault(part, {})
        node[parts[-1]] = 100.0 * scale
    return payload


def write_json(path, payload):
    path.write_text(json.dumps(payload))
    return path


def run_gate(tmp_path, baseline, current, *extra):
    base_path = write_json(tmp_path / "baseline.json", baseline)
    cur_path = write_json(tmp_path / "current.json", current)
    argv = [
        "--baseline", str(base_path),
        "--current", str(cur_path),
        *extra,
    ]
    return check_regression.main(argv)


class TestToleranceBand:
    def test_identical_results_pass(self, tmp_path):
        assert run_gate(tmp_path, full_payload(), full_payload()) == 0

    def test_regression_beyond_band_fails(self, tmp_path):
        assert run_gate(tmp_path, full_payload(), full_payload(0.5)) == 1

    def test_small_dip_warns_but_passes(self, tmp_path, capsys):
        assert run_gate(tmp_path, full_payload(), full_payload(0.9)) == 0
        assert "WARN" in capsys.readouterr().out

    def test_metric_missing_from_current_fails(self, tmp_path):
        current = full_payload()
        del current["decode"]
        assert run_gate(tmp_path, full_payload(), current) == 1


class TestAbsentBaselineSections:
    def test_absent_section_warns_but_passes_by_default(
        self, tmp_path, capsys
    ):
        baseline = full_payload()
        del baseline["bootstrap"]
        assert run_gate(tmp_path, baseline, full_payload()) == 0
        out = capsys.readouterr().out
        assert "WARN" in out
        assert "no baseline" in out
        assert "NEW" not in out  # the silent-skip wording is gone

    def test_require_sections_makes_absent_baseline_fatal(
        self, tmp_path, capsys
    ):
        baseline = full_payload()
        del baseline["bootstrap"]
        assert (
            run_gate(
                tmp_path, baseline, full_payload(), "--require-sections"
            )
            == 1
        )
        assert "--require-sections" in capsys.readouterr().out

    def test_require_sections_passes_with_full_history(self, tmp_path):
        assert (
            run_gate(
                tmp_path, full_payload(), full_payload(), "--require-sections"
            )
            == 0
        )

    def test_zero_baseline_treated_as_absent(self, tmp_path):
        baseline = full_payload()
        baseline["decode"]["decode_speedup"] = 0
        assert run_gate(tmp_path, baseline, full_payload()) == 0
        assert (
            run_gate(
                tmp_path, baseline, full_payload(), "--require-sections"
            )
            == 1
        )


class TestHierarchySections:
    """The campus-scale sections are guarded, not just recorded."""

    def test_hierarchy_and_pool_metrics_are_guarded(self):
        dotted = {d for d, _ in check_regression.GUARDED_METRICS}
        assert {
            "hierarchy.records_per_second",
            "hierarchy.hierarchy_speedup",
            "hierarchy.realtime_factor",
            "pool_scaling.best_records_per_second",
        } <= dotted

    def test_hierarchy_regression_fails_the_gate(self, tmp_path):
        current = full_payload()
        current["hierarchy"]["records_per_second"] = 50.0  # 0.5x baseline
        assert run_gate(tmp_path, full_payload(), current) == 1

    def test_missing_pool_section_fails_under_require(self, tmp_path):
        baseline = full_payload()
        del baseline["pool_scaling"]
        assert (
            run_gate(
                tmp_path, baseline, full_payload(), "--require-sections"
            )
            == 1
        )


class TestMissingFiles:
    def test_missing_baseline_file_skips(self, tmp_path):
        cur = write_json(tmp_path / "current.json", full_payload())
        assert (
            check_regression.main(
                [
                    "--baseline", str(tmp_path / "absent.json"),
                    "--current", str(cur),
                ]
            )
            == 0
        )

    def test_missing_current_file_fails(self, tmp_path):
        base = write_json(tmp_path / "baseline.json", full_payload())
        assert (
            check_regression.main(
                [
                    "--baseline", str(base),
                    "--current", str(tmp_path / "absent.json"),
                ]
            )
            == 1
        )
