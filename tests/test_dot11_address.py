"""Unit tests for MAC address modelling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dot11.address import (
    AP_OUI,
    BROADCAST,
    CLIENT_OUI,
    MacAddress,
    MacAllocator,
)


class TestMacAddress:
    def test_parse_round_trips_through_str(self):
        addr = MacAddress.parse("00:1a:2b:3c:4d:5e")
        assert str(addr) == "00:1a:2b:3c:4d:5e"

    def test_parse_accepts_dashes(self):
        assert MacAddress.parse("00-1a-2b-3c-4d-5e").value == 0x001A2B3C4D5E

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            MacAddress.parse("not-a-mac")

    def test_parse_rejects_short(self):
        with pytest.raises(ValueError):
            MacAddress.parse("00:1a:2b:3c:4d")

    def test_value_range_enforced(self):
        with pytest.raises(ValueError):
            MacAddress(1 << 48)
        with pytest.raises(ValueError):
            MacAddress(-1)

    def test_broadcast_properties(self):
        assert BROADCAST.is_broadcast
        assert BROADCAST.is_group
        assert not BROADCAST.is_multicast
        assert not BROADCAST.is_unicast

    def test_multicast_is_group_not_broadcast(self):
        mcast = MacAddress.parse("01:00:5e:00:00:01")
        assert mcast.is_multicast
        assert mcast.is_group
        assert not mcast.is_broadcast

    def test_unicast(self):
        addr = MacAddress.parse("00:11:22:33:44:55")
        assert addr.is_unicast
        assert not addr.is_group

    def test_ordering_and_hash(self):
        a = MacAddress(1)
        b = MacAddress(2)
        assert a < b
        assert a == MacAddress(1)
        assert hash(a) == hash(MacAddress(1))
        assert len({a, MacAddress(1), b}) == 2

    def test_oui(self):
        addr = MacAddress.parse("00:1a:2b:3c:4d:5e")
        assert addr.oui == 0x001A2B

    @given(st.integers(min_value=0, max_value=0xFFFF_FFFF_FFFF))
    def test_bytes_round_trip(self, value):
        addr = MacAddress(value)
        assert MacAddress.from_bytes(addr.to_bytes()) == addr

    @given(st.integers(min_value=0, max_value=0xFFFF_FFFF_FFFF))
    def test_str_round_trip(self, value):
        addr = MacAddress(value)
        assert MacAddress.parse(str(addr)) == addr


class TestMacAllocator:
    def test_allocates_distinct_unicast(self):
        alloc = MacAllocator(AP_OUI)
        addrs = list(alloc.allocate_many(100))
        assert len(set(addrs)) == 100
        assert all(a.is_unicast for a in addrs)

    def test_separate_ouis_do_not_collide(self):
        aps = list(MacAllocator(AP_OUI).allocate_many(50))
        clients = list(MacAllocator(CLIENT_OUI).allocate_many(50))
        assert not set(aps) & set(clients)

    def test_rejects_oversized_oui(self):
        with pytest.raises(ValueError):
            MacAllocator(1 << 24)
