"""Fault-matrix tests: damaged bytes, dying workers, partitioned clocks.

The robustness contract has three layers, each tested here against
*ground truth* rather than eyeballed counters:

* **ingest** — corruption and truncation, crossed with every
  :class:`~repro.jtrace.io.ErrorPolicy`: strict raises, skip
  resynchronizes and counts exactly what was lost, drop-trace empties
  the damaged trace;
* **pool recovery** — a worker killed mid-shard is retried and the run
  completes; a shard missing its deadline degrades to serial;
  deterministic worker exceptions still propagate;
* **degraded sync** — a partitioned reference graph reconstructs the
  largest island and quarantines the rest with reasons; radios whose
  references only appear after auto-widen are reported as rejoined;
  an internally inconsistent clock fit is evicted.

Plus the end-to-end property the whole PR hangs on: the sim fault
harness's damage shows up, accurately, in ``report.health`` — and with
an all-off :class:`~repro.sim.scenario.FaultConfig` the output is
bit-identical to the fault-free pipeline.
"""

import gzip
import multiprocessing
import os
import time

import pytest

from repro.core.faults import (
    HealthReport,
    RetryPolicy,
    ShardHealth,
    map_shards_with_recovery,
)
from repro.core.pipeline import JigsawPipeline
from repro.core.sync.bootstrap import (
    QUARANTINE_NO_REFERENCES,
    QUARANTINE_UNSTABLE_CLOCK,
    bootstrap_synchronization,
)
from repro.core.sync.sharded import ShardedBootstrap, resolve_pool_workers
from repro.core.unify.sharded import ShardedUnifier
from repro.core.unify.sharded import _unify_shard as _real_unify_shard
from repro.dot11.address import MacAddress
from repro.dot11.frame import make_data
from repro.dot11.serialize import frame_to_bytes
from repro.jtrace.io import (
    DecodeHealth,
    ErrorPolicy,
    RadioTrace,
    open_trace_streams,
    read_trace,
    write_traces,
)
from repro.jtrace.records import RecordKind, TraceRecord, record_to_bytes
from repro.sim import (
    FaultConfig,
    ScenarioConfig,
    inject_record_faults,
    write_faulty_traces,
)
from repro.sim.runner import run_scenario

pytestmark = pytest.mark.faults

SRC = MacAddress.parse("00:0c:0c:00:00:07")
DST = MacAddress.parse("00:0a:0a:00:00:07")

_FORK = multiprocessing.get_start_method() == "fork"
fork_only = pytest.mark.skipif(
    not _FORK, reason="pool fault tests patch workers via fork inheritance"
)


def record_for(frame, radio_id, ts, channel=1):
    raw = frame_to_bytes(frame)
    return TraceRecord(
        radio_id=radio_id,
        timestamp_us=ts,
        kind=RecordKind.VALID,
        channel=channel,
        rate_mbps=11.0,
        rssi_dbm=-55.0,
        frame_len=len(raw),
        fcs=int.from_bytes(raw[-4:], "little"),
        snap=raw[:200],
        duration_us=100,
    )


def data_frame(seq, body=b"payload"):
    return make_data(SRC, DST, DST, seq=seq, body=body)


# --------------------------------------------------------------------------
# Ingest: the error-policy matrix over byte-level damage
# --------------------------------------------------------------------------


def _write_single_trace(tmp_path, n_records=40):
    """One trace on disk plus its records and their encoded byte sizes."""
    records = [
        record_for(data_frame(seq=i + 1), 1, 1000 * (i + 1))
        for i in range(n_records)
    ]
    trace = RadioTrace(1, 1, records)
    (path,) = write_traces([trace], tmp_path)
    sizes = [len(record_to_bytes(r)) for r in records]
    return path, records, sizes


def _rewrite_blob(path, mutate):
    """Decompress the trace, apply ``mutate(bytearray)``, recompress."""
    blob = bytearray(gzip.decompress(path.read_bytes()))
    blob = mutate(blob)
    with gzip.open(path, "wb") as fh:
        fh.write(bytes(blob))


def _smash_record(path, sizes, index):
    """Make record ``index``'s on-disk header implausible and mis-framed."""
    offset = sum(sizes[:index])

    def mutate(blob):
        blob[offset + 10] = 0xEE       # invalid kind byte
        blob[offset + 26] = 0xFF       # absurd snap_len: framing lost
        blob[offset + 27] = 0xFF
        return blob

    _rewrite_blob(path, mutate)


class TestErrorPolicyMatrix:
    def test_corruption_strict_raises(self, tmp_path):
        path, _, sizes = _write_single_trace(tmp_path)
        _smash_record(path, sizes, 5)
        with pytest.raises(ValueError):
            read_trace(path)

    def test_corruption_skip_resyncs_and_counts(self, tmp_path):
        path, records, sizes = _write_single_trace(tmp_path)
        _smash_record(path, sizes, 5)
        health = DecodeHealth()
        trace = read_trace(path, policy="skip", health=health)
        assert [r.timestamp_us for r in trace.records] == [
            r.timestamp_us for r in records if r is not records[5]
        ]
        assert health.records_decoded == len(records) - 1
        assert health.records_skipped == 1
        # The resync scan consumed exactly the smashed record's bytes.
        assert health.bytes_resynced == sizes[5]
        assert health.truncated_tails == 0
        assert not health.clean

    def test_adjacent_corruption_skip(self, tmp_path):
        path, records, sizes = _write_single_trace(tmp_path)
        _smash_record(path, sizes, 7)
        _smash_record(path, sizes, 8)
        health = DecodeHealth()
        trace = read_trace(path, policy="skip", health=health)
        assert len(trace.records) == len(records) - 2
        assert 1 <= health.records_skipped <= 2
        assert health.bytes_resynced == sizes[7] + sizes[8]

    def test_corruption_drop_trace(self, tmp_path):
        path, _, sizes = _write_single_trace(tmp_path)
        _smash_record(path, sizes, 5)
        health = DecodeHealth()
        trace = read_trace(path, policy=ErrorPolicy.DROP_TRACE, health=health)
        assert len(trace.records) == 0
        assert health.traces_dropped == 1

    def test_truncated_tail_skip_yields_complete_records(self, tmp_path):
        path, records, sizes = _write_single_trace(tmp_path)
        cut = 12  # mid-header of the final record
        _rewrite_blob(path, lambda blob: blob[: sum(sizes[:-1]) + cut])
        with pytest.raises(ValueError):
            read_trace(path)  # strict
        health = DecodeHealth()
        trace = read_trace(path, policy="skip", health=health)
        assert len(trace.records) == len(records) - 1
        assert health.truncated_tails == 1
        assert health.truncated_tail_bytes == cut
        assert health.records_skipped == 0

    def test_gzip_stream_truncation(self, tmp_path):
        path, records, _ = _write_single_trace(tmp_path)
        gz = path.read_bytes()
        path.write_bytes(gz[: len(gz) // 2])
        with pytest.raises(ValueError):
            read_trace(path)  # strict
        health = DecodeHealth()
        trace = read_trace(path, policy="skip", health=health)
        # Everything decompressed before the damage is salvaged.
        assert 0 < len(trace.records) < len(records)
        assert trace.records[0].timestamp_us == records[0].timestamp_us
        assert health.stream_errors == 1
        assert not health.clean

    def test_clean_trace_identical_under_all_policies(self, tmp_path):
        path, records, _ = _write_single_trace(tmp_path)
        for policy in ErrorPolicy:
            health = DecodeHealth()
            trace = read_trace(path, policy=policy, health=health)
            assert trace.records == records
            assert health.clean


# --------------------------------------------------------------------------
# Pool recovery: dying workers, missed deadlines, serial degradation
# --------------------------------------------------------------------------

#: Flag-file path a crashing worker uses to die exactly once (fork
#: children inherit the module global, so tests just assign it).
_CRASH_FLAG = None


def _crash_once_worker(flag_path, value):
    if not os.path.exists(flag_path):
        open(flag_path, "w").close()
        os._exit(1)  # hard kill: the pool sees BrokenProcessPool
    return value * 2


def _slow_worker(duration_s, value):
    time.sleep(duration_s)
    return value


def _raising_worker(value):
    raise ValueError(f"deterministic failure for {value}")


def _crashy_unify_shard(unifier, traces, bootstrap):
    if _CRASH_FLAG and not os.path.exists(_CRASH_FLAG):
        open(_CRASH_FLAG, "w").close()
        os._exit(1)
    return _real_unify_shard(unifier, traces, bootstrap)


class TestPoolWorkerValidation:
    def test_negative_max_workers_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            resolve_pool_workers(-1, 4)
        with pytest.raises(ValueError):
            ShardedUnifier(max_workers=-2)._worker_count(4)

    def test_zero_and_one_mean_serial(self):
        assert resolve_pool_workers(0, 4) == 1
        assert resolve_pool_workers(1, 4) == 1

    def test_never_more_workers_than_shards(self):
        # Capped by the shard count AND the machine's cores (floor of
        # two: an explicit pool request is never demoted to serial).
        assert resolve_pool_workers(8, 3) == min(
            3, max(2, os.cpu_count() or 1)
        )
        assert resolve_pool_workers(2, 3) == 2

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(shard_timeout_s=0)
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_multiplier=2.0, backoff_cap_s=0.3
        )
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(5) == pytest.approx(0.3)  # capped

    def test_timeout_knob_threads_through_coordinators(self):
        for coord in (
            ShardedUnifier(shard_timeout_s=7.5),
            ShardedBootstrap(shard_timeout_s=7.5),
        ):
            assert coord.retry_policy.shard_timeout_s == 7.5
        merged = ShardedUnifier(
            retry_policy=RetryPolicy(max_retries=5), shard_timeout_s=2.0
        ).retry_policy
        assert merged.max_retries == 5
        assert merged.shard_timeout_s == 2.0


class TestPoolRecovery:
    @fork_only
    def test_worker_crash_is_retried(self, tmp_path):
        flag = str(tmp_path / "crashed")
        health = ShardHealth()
        results = map_shards_with_recovery(
            _crash_once_worker,
            [(flag, 3), (flag, 4)],
            max_workers=2,
            policy=RetryPolicy(max_retries=2, backoff_base_s=0.0),
            health=health,
        )
        assert results == [6, 8]
        assert health.worker_crashes >= 1
        assert health.pool_retries >= 1
        assert health.shards_degraded_serial == 0

    @fork_only
    def test_timeout_degrades_to_serial(self):
        health = ShardHealth()
        slept = []
        results = map_shards_with_recovery(
            _slow_worker,
            [(0.4, 9)],
            max_workers=2,
            policy=RetryPolicy(
                max_retries=1, backoff_base_s=0.01, shard_timeout_s=0.05
            ),
            health=health,
            sleep=slept.append,
        )
        assert results == [9]  # the in-process fallback still answers
        assert health.shard_timeouts == 2  # initial attempt + one retry
        assert health.shards_degraded_serial == 1
        assert slept  # backoff was requested (and injected away)

    @fork_only
    def test_deterministic_exception_propagates(self):
        health = ShardHealth()
        with pytest.raises(ValueError, match="deterministic failure"):
            map_shards_with_recovery(
                _raising_worker,
                [(1,)],
                max_workers=2,
                policy=RetryPolicy(max_retries=3),
                health=health,
            )
        assert health.pool_retries == 0  # retrying would fail identically

    @fork_only
    def test_sharded_unifier_survives_worker_death(
        self, tmp_path, monkeypatch
    ):
        global _CRASH_FLAG
        # Two channels -> two shards -> pool mode with max_workers=2.
        frames = {1000 * i: data_frame(seq=i) for i in range(1, 6)}
        traces = []
        for radio_id, channel in ((0, 1), (1, 1), (2, 6), (3, 6)):
            trace = RadioTrace(radio_id, channel)
            for t in sorted(frames):
                trace.append(record_for(frames[t], radio_id, t, channel))
            traces.append(trace)
        bootstrap = bootstrap_synchronization(traces)
        reference = ShardedUnifier(max_workers=0).unify(traces, bootstrap)

        monkeypatch.setattr(
            "repro.core.unify.sharded._unify_shard", _crashy_unify_shard
        )
        _CRASH_FLAG = str(tmp_path / "unify_crash")
        try:
            unifier = ShardedUnifier(
                max_workers=2,
                retry_policy=RetryPolicy(max_retries=2, backoff_base_s=0.0),
            )
            result = unifier.unify(traces, bootstrap)
        finally:
            _CRASH_FLAG = None
        assert unifier.health.worker_crashes >= 1
        assert [(j.timestamp_us, j.kind) for j in result.jframes] == [
            (j.timestamp_us, j.kind) for j in reference.jframes
        ]


# --------------------------------------------------------------------------
# Degraded sync: islands, quarantine reasons, rejoin, unstable clocks
# --------------------------------------------------------------------------


class TestDegradedSync:
    def _partitioned_traces(self):
        """Island A = {0, 1}; island B = {2, 3, 4}; radio 5 hears nothing
        shared."""
        frame_a = data_frame(seq=1)
        frame_b = data_frame(seq=2)
        lonely = data_frame(seq=3)
        traces = [
            RadioTrace(0, 1, [record_for(frame_a, 0, 1000)]),
            RadioTrace(1, 1, [record_for(frame_a, 1, 1200)]),
            RadioTrace(2, 1, [record_for(frame_b, 2, 2000)]),
            RadioTrace(3, 1, [record_for(frame_b, 3, 2100)]),
            RadioTrace(4, 1, [record_for(frame_b, 4, 2200)]),
            RadioTrace(5, 1, [record_for(lonely, 5, 1500)]),
        ]
        return traces

    def test_largest_island_is_primary(self):
        result = bootstrap_synchronization(
            self._partitioned_traces(), auto_widen=False
        )
        assert set(result.offsets_us) == {2, 3, 4}
        assert sorted(result.unreachable) == [0, 1, 5]
        assert result.quarantined[5] == QUARANTINE_NO_REFERENCES
        assert result.quarantined[0] == result.quarantined[1]
        assert result.quarantined[0].startswith("sync-island:")
        assert sorted(map(sorted, result.islands)) == [
            [0, 1], [2, 3, 4], [5]
        ]
        assert not result.fully_synchronized

    def test_local_island_mode_synchronizes_every_island(self):
        # Campus semantics: islands are expected, each multi-radio island
        # gets its own local timeline; only the reference-less singleton
        # stays quarantined.
        result = bootstrap_synchronization(
            self._partitioned_traces(), auto_widen=False, island_mode="local"
        )
        assert set(result.offsets_us) == {0, 1, 2, 3, 4}
        assert sorted(result.unreachable) == [5]
        assert result.quarantined == {5: QUARANTINE_NO_REFERENCES}
        assert sorted(map(sorted, result.islands)) == [
            [0, 1], [2, 3, 4], [5]
        ]
        sharded = ShardedBootstrap(
            max_workers=0, auto_widen=False, island_mode="local"
        ).bootstrap(self._partitioned_traces())
        assert sharded.offsets_us == result.offsets_us
        assert sharded.quarantined == result.quarantined

    def test_island_mode_defaults_local_for_stamped_fleets(self):
        traces = self._partitioned_traces()
        for trace in traces:
            trace.building_id = trace.radio_id // 2
        result = bootstrap_synchronization(traces, auto_widen=False)
        assert set(result.offsets_us) == {0, 1, 2, 3, 4}
        assert result.quarantined == {5: QUARANTINE_NO_REFERENCES}

    def test_sharded_bootstrap_matches_reference_when_degraded(self):
        traces = self._partitioned_traces()
        reference = bootstrap_synchronization(traces, auto_widen=False)
        for workers in (0, 2):
            sharded = ShardedBootstrap(
                max_workers=workers, auto_widen=False
            ).bootstrap(traces)
            assert sharded.offsets_us == reference.offsets_us
            assert sharded.quarantined == reference.quarantined
            assert sharded.islands == reference.islands

    def test_rejoin_reported_after_auto_widen(self):
        # The shared frame appears 3 s in — outside the initial window —
        # so radio 1 is unreachable until the window widens.
        early = data_frame(seq=1)
        late = data_frame(seq=2)
        traces = [
            RadioTrace(0, 1, [
                record_for(early, 0, 0),
                record_for(late, 0, 3_000_000),
            ]),
            RadioTrace(1, 1, [record_for(late, 1, 3_000_400)]),
        ]
        result = bootstrap_synchronization(traces, auto_widen=True)
        assert result.fully_synchronized
        assert result.widen_rounds >= 1
        assert result.rejoined == [1]
        sharded = ShardedBootstrap(max_workers=0).bootstrap(traces)
        assert sharded.rejoined == [1]
        assert sharded.widen_rounds == result.widen_rounds

    def test_unstable_clock_fit_quarantined(self):
        # Set A = {0, 1, 2} then set B = {1, 2, 3, 4}; radio 2's clock
        # jumps 1 s between them, so B's redundant 1-2 edge contradicts
        # the offsets A established.  Only radio 2 has violations on a
        # majority of its edges.
        frame_a = data_frame(seq=1)
        frame_b = data_frame(seq=2)
        # Well above the 50 ms stability tolerance, well inside the
        # examination window.
        jump = 200_000
        traces = [
            RadioTrace(0, 1, [record_for(frame_a, 0, 1000)]),
            RadioTrace(1, 1, [
                record_for(frame_a, 1, 1050),
                record_for(frame_b, 1, 2050),
            ]),
            RadioTrace(2, 1, [
                record_for(frame_a, 2, 1080),
                record_for(frame_b, 2, 2080 + jump),
            ]),
            RadioTrace(3, 1, [record_for(frame_b, 3, 2030)]),
            RadioTrace(4, 1, [record_for(frame_b, 4, 2040)]),
        ]
        result = bootstrap_synchronization(traces, auto_widen=False)
        assert result.quarantined == {2: QUARANTINE_UNSTABLE_CLOCK}
        assert set(result.offsets_us) == {0, 1, 3, 4}
        # With a tolerance above the jump the fit is accepted as skew.
        lax = bootstrap_synchronization(
            traces, auto_widen=False, stability_tolerance_us=1_000_000
        )
        assert lax.fully_synchronized


# --------------------------------------------------------------------------
# The sim fault-injection harness, end to end
# --------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tiny_run():
    config = ScenarioConfig.tiny(seed=11)
    artifacts = run_scenario(config)
    return config, artifacts


def _faulted_config(faults):
    # Same seed as ``tiny_run``: the simulation is identical, only the
    # capture-path damage differs.
    return ScenarioConfig.tiny(seed=11, faults=faults)


class TestFaultInjectionHarness:
    def test_fault_config_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(corrupt_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(truncate_radios=-1)
        with pytest.raises(ValueError):
            FaultConfig(truncate_mode="confetti")
        with pytest.raises(ValueError):
            FaultConfig(blackout_start_fraction=2.0)
        assert not FaultConfig().any
        assert FaultConfig(corrupt_rate=0.1).any

    def test_all_off_writes_are_byte_clean(self, tmp_path, tiny_run):
        config, artifacts = tiny_run
        traces = artifacts.radio_traces
        plain_dir = tmp_path / "plain"
        plain_dir.mkdir()
        write_traces(traces, plain_dir)
        fault_dir = tmp_path / "faulted"
        plan = write_faulty_traces(traces, fault_dir, config)
        assert not plan.any
        for trace in traces:
            name = f"radio_{trace.radio_id:04d}.jtr.gz"
            a = gzip.decompress((plain_dir / name).read_bytes())
            b = gzip.decompress((fault_dir / name).read_bytes())
            assert a == b

    def test_corruption_plan_matches_decode_health(self, tmp_path, tiny_run):
        _, artifacts = tiny_run
        traces = artifacts.radio_traces
        config = _faulted_config(FaultConfig(corrupt_rate=0.05))
        plan = write_faulty_traces(traces, tmp_path, config)
        n_corrupt = sum(len(v) for v in plan.corrupted_records.values())
        assert n_corrupt > 0
        # Exact loss model: every corrupted record is lost, plus any good
        # record sandwiched between two corrupted ones (resync confirms a
        # candidate boundary by probing its successor header, so the
        # sandwiched record's boundary can never confirm).
        n_lost = 0
        for radio, hit in plan.corrupted_records.items():
            hit_set = set(hit)
            lost = set(hit) | {
                j for j in range(max(hit))
                if j - 1 in hit_set and j + 1 in hit_set
            }
            n_lost += len(lost)
        health = DecodeHealth()
        total = 0
        for stream in open_trace_streams(tmp_path, policy="skip"):
            records = list(stream)
            total += len(records)
            health.merge(stream.decode_health)
        assert total == sum(len(t) for t in traces) - n_lost
        assert 1 <= health.records_skipped <= n_corrupt
        with pytest.raises(ValueError):
            for stream in open_trace_streams(tmp_path, policy="strict"):
                list(stream)

    def test_blackout_and_clock_jump_plans(self, tiny_run):
        _, artifacts = tiny_run
        traces = artifacts.radio_traces
        config = _faulted_config(
            FaultConfig(blackout_radios=1, clock_jump_radios=1)
        )
        faulted, plan = inject_record_faults(traces, config)
        assert len(plan.blackouts) == 1 and len(plan.clock_jumps) == 1
        by_id = {t.radio_id: t for t in traces}
        new_by_id = {t.radio_id: t for t in faulted}
        (radio, (start, end)), = plan.blackouts.items()
        dropped = plan.blackout_dropped[radio]
        assert dropped > 0
        assert len(new_by_id[radio]) == len(by_id[radio]) - dropped
        assert not any(
            start <= r.timestamp_us < end for r in new_by_id[radio].records
        )
        (radio, (cut, jump)), = plan.clock_jumps.items()
        old = by_id[radio].records
        new = new_by_id[radio].records
        for o, n in zip(old, new):
            expect = o.timestamp_us + (jump if o.timestamp_us >= cut else 0)
            assert n.timestamp_us == expect

    def test_record_truncation_reported_as_tail(self, tmp_path, tiny_run):
        _, artifacts = tiny_run
        traces = artifacts.radio_traces
        config = _faulted_config(FaultConfig(truncate_radios=1))
        plan = write_faulty_traces(traces, tmp_path, config)
        (radio,) = plan.truncated
        pre_counts = {t.radio_id: len(t) for t in traces}
        health = DecodeHealth()
        counts = {}
        for stream in open_trace_streams(tmp_path, policy="skip"):
            counts[stream.radio_id] = len(list(stream))
            health.merge(stream.decode_health)
        assert counts[radio] < pre_counts[radio]
        assert health.truncated_tails == 1
        assert health.truncated_tail_bytes > 0
        untouched = {r: c for r, c in counts.items() if r != radio}
        assert untouched == {
            r: c for r, c in pre_counts.items() if r != radio
        }

    def test_pipeline_health_reflects_injected_faults(
        self, tmp_path, tiny_run
    ):
        _, artifacts = tiny_run
        traces = artifacts.radio_traces
        config = _faulted_config(
            FaultConfig(corrupt_rate=0.05, truncate_radios=1,
                        blackout_radios=1)
        )
        plan = write_faulty_traces(traces, tmp_path, config)
        clock_groups = [
            [r.radio_id for r in pod.radios] for pod in artifacts.pods
        ]
        streams = open_trace_streams(tmp_path, policy="skip")
        report = JigsawPipeline(unifier=ShardedUnifier(max_workers=0)).run(
            streams, clock_groups=clock_groups
        )
        assert report.jframes
        assert report.health.degraded
        n_corrupt = sum(len(v) for v in plan.corrupted_records.values())
        assert report.health.ingest.records_skipped >= 1
        assert report.health.ingest.records_skipped <= n_corrupt
        assert report.health.ingest.truncated_tails == 1
        assert "degraded:" in report.summary()

    def test_clean_faultless_run_is_bit_identical(self, tmp_path, tiny_run):
        config, artifacts = tiny_run
        traces = artifacts.radio_traces
        write_faulty_traces(traces, tmp_path, config)
        clock_groups = [
            [r.radio_id for r in pod.radios] for pod in artifacts.pods
        ]
        baseline = JigsawPipeline(
            unifier=ShardedUnifier(max_workers=0)
        ).run(traces, clock_groups=clock_groups)
        streams = open_trace_streams(tmp_path, policy="skip")
        replayed = JigsawPipeline(
            unifier=ShardedUnifier(max_workers=0)
        ).run(streams, clock_groups=clock_groups)
        assert not replayed.health.degraded
        assert "degraded:" not in replayed.summary()
        assert len(replayed.jframes) == len(baseline.jframes)
        for a, b in zip(baseline.jframes, replayed.jframes):
            assert a.timestamp_us == b.timestamp_us
            assert a.kind == b.kind
            assert [i.radio_id for i in a.instances] == [
                i.radio_id for i in b.instances
            ]

    def test_health_report_summary_shape(self):
        report = HealthReport()
        assert not report.degraded
        report.ingest.records_skipped = 3
        assert report.degraded
        assert "skipped=3" in report.summary()


# --------------------------------------------------------------------------
# Batched-decode parity: the vectorized engine is an implementation detail
# --------------------------------------------------------------------------


class TestBatchedDecodeParity:
    """The batch-vectorized ingest engine must be indistinguishable from
    the scalar decoder under damage: byte-identical records, identical
    ``DecodeHealth`` ledgers, identical errors at identical positions,
    and jframe-identical pipeline output — for every error policy, with
    and without decode-ahead reader threads."""

    #: Batched ingest variants checked against the scalar reference.
    BATCHED = (
        {"vectorized": True, "decode_ahead": 0},   # inline batch decode
        {"vectorized": True, "decode_ahead": 3},   # + reader thread
    )

    @staticmethod
    def _faulted_dir(tmp_path, artifacts, faults):
        config = _faulted_config(faults)
        write_faulty_traces(artifacts.radio_traces, tmp_path, config)
        return tmp_path

    @staticmethod
    def _drain(directory, policy, **ingest):
        out = {}
        for stream in open_trace_streams(directory, policy=policy, **ingest):
            out[stream.radio_id] = (list(stream), stream.decode_health)
        return out

    @pytest.mark.parametrize("policy", ["skip", "drop-trace"])
    def test_faulted_ledgers_and_records_identical(
        self, tmp_path, tiny_run, policy
    ):
        _, artifacts = tiny_run
        directory = self._faulted_dir(
            tmp_path,
            artifacts,
            FaultConfig(corrupt_rate=0.05, truncate_radios=1),
        )
        scalar = self._drain(
            directory, policy, vectorized=False, decode_ahead=0
        )
        for ingest in self.BATCHED:
            batched = self._drain(directory, policy, **ingest)
            assert batched.keys() == scalar.keys()
            for radio_id, (records, health) in scalar.items():
                b_records, b_health = batched[radio_id]
                assert b_health == health, (radio_id, ingest)
                assert b_records == records, (radio_id, ingest)

    def test_strict_errors_identical(self, tmp_path, tiny_run):
        _, artifacts = tiny_run
        directory = self._faulted_dir(
            tmp_path, artifacts, FaultConfig(corrupt_rate=0.05)
        )

        def first_error(**ingest):
            errors = {}
            for stream in open_trace_streams(
                directory, policy="strict", **ingest
            ):
                try:
                    list(stream)
                except ValueError as exc:
                    errors[stream.radio_id] = str(exc)
            return errors

        scalar = first_error(vectorized=False, decode_ahead=0)
        assert scalar  # the plan corrupted something
        for ingest in self.BATCHED:
            assert first_error(**ingest) == scalar, ingest

    def test_faulted_pipeline_jframes_identical(self, tmp_path, tiny_run):
        _, artifacts = tiny_run
        directory = self._faulted_dir(
            tmp_path,
            artifacts,
            FaultConfig(corrupt_rate=0.03, blackout_radios=1),
        )
        clock_groups = artifacts.clock_groups()

        def reconstruct(**ingest):
            streams = open_trace_streams(
                directory, policy="skip", **ingest
            )
            return JigsawPipeline(unifier=ShardedUnifier(max_workers=0)).run(
                streams, clock_groups=clock_groups
            )

        baseline = reconstruct(vectorized=False, decode_ahead=0)
        base_frames = [
            (j.timestamp_us, j.channel, j.fcs, j.n_instances,
             [i.radio_id for i in j.instances])
            for j in baseline.jframes
        ]
        for ingest in self.BATCHED:
            report = reconstruct(**ingest)
            assert report.unification.stats == baseline.unification.stats
            assert report.health.ingest == baseline.health.ingest
            frames = [
                (j.timestamp_us, j.channel, j.fcs, j.n_instances,
                 [i.radio_id for i in j.instances])
                for j in report.jframes
            ]
            assert frames == base_frames, ingest
