"""Tests for transport-layer reconstruction and inference."""

import pytest

from repro.core.link.exchange import FrameExchange
from repro.core.transport.flows import FlowKey, collect_flows
from repro.core.transport.inference import (
    LossCause,
    TransportInference,
)
from repro.core.unify.jframe import Instance, JFrame, JFrameKind
from repro.dot11.address import MacAddress
from repro.dot11.frame import make_data
from repro.dot11.rates import RATE_11, frame_airtime_us
from repro.net.packets import IpPacket, TcpFlags, TcpSegment, ip_to_bytes

STA = MacAddress.parse("00:0c:0c:00:00:01")
AP = MacAddress.parse("00:0a:0a:00:00:01")

CLIENT_IP = 0x0A000001
SERVER_IP = 0xAC100001


def tcp_exchange(
    seq,
    ack,
    flags,
    payload_len,
    t_end,
    uplink=True,
    delivered=True,
    mac_seq=0,
    client_port=40_000,
):
    """A frame exchange carrying one TCP segment."""
    if uplink:
        packet = IpPacket(
            CLIENT_IP, SERVER_IP,
            TcpSegment(client_port, 80, seq, ack, flags, payload_len),
        )
        frame = make_data(
            STA, AP, AP, seq=mac_seq, body=ip_to_bytes(packet), to_ds=True
        )
    else:
        packet = IpPacket(
            SERVER_IP, CLIENT_IP,
            TcpSegment(80, 40_000, seq, ack, flags, payload_len),
        )
        frame = make_data(
            AP, STA, AP, seq=mac_seq, body=ip_to_bytes(packet), from_ds=True
        )
    duration = frame_airtime_us(frame.size_bytes, RATE_11)
    from repro.dot11.serialize import frame_to_bytes
    from repro.jtrace.records import RecordKind, TraceRecord
    from repro.core.link.attempt import TransmissionAttempt

    raw = frame_to_bytes(frame)
    record = TraceRecord(
        radio_id=0, timestamp_us=t_end, kind=RecordKind.VALID, channel=1,
        rate_mbps=11.0, rssi_dbm=-55.0, frame_len=len(raw),
        fcs=int.from_bytes(raw[-4:], "little"), snap=raw[:200],
        duration_us=duration,
    )
    jframe = JFrame(
        timestamp_us=t_end, kind=JFrameKind.VALID, channel=1,
        instances=[Instance(0, t_end, float(t_end), record)],
        frame=frame, frame_len=len(raw), fcs=record.fcs,
        rate_mbps=11.0, duration_us=duration, transmitter=frame.transmitter,
    )
    attempt = TransmissionAttempt(
        transmitter=frame.transmitter, receiver=frame.addr1, data=jframe
    )
    return FrameExchange(
        transmitter=frame.transmitter,
        receiver=frame.addr1,
        attempts=[attempt],
        delivered=delivered,
    )


def full_flow(t0=1_000_000, with_losses=None, data_segments=4):
    """A handshake + upload of ``data_segments`` MSS segments + teardown.

    ``with_losses`` maps segment index -> dict(delivered=..., retransmit=True)
    """
    with_losses = with_losses or {}
    exchanges = []
    isn_c, isn_s = 1000, 9000
    t = t0
    exchanges.append(tcp_exchange(isn_c, 0, TcpFlags.SYN, 0, t, uplink=True))
    t += 5_000
    exchanges.append(
        tcp_exchange(isn_s, isn_c + 1, TcpFlags.SYN | TcpFlags.ACK, 0, t,
                     uplink=False)
    )
    t += 5_000
    exchanges.append(
        tcp_exchange(isn_c + 1, isn_s + 1, TcpFlags.ACK, 0, t, uplink=True)
    )
    seq = isn_c + 1
    mss = 1000
    for i in range(data_segments):
        t += 10_000
        spec = with_losses.get(i, {})
        delivered = spec.get("delivered", True)
        exchanges.append(
            tcp_exchange(
                seq, isn_s + 1, TcpFlags.ACK | TcpFlags.PSH, mss, t,
                uplink=True, delivered=delivered, mac_seq=i + 10,
            )
        )
        if spec.get("retransmit"):
            t += 40_000
            exchanges.append(
                tcp_exchange(
                    seq, isn_s + 1, TcpFlags.ACK | TcpFlags.PSH, mss, t,
                    uplink=True, delivered=True, mac_seq=i + 100,
                )
            )
        t += 8_000
        exchanges.append(
            tcp_exchange(isn_s + 1, seq + mss, TcpFlags.ACK, 0, t,
                         uplink=False)
        )
        seq += mss
    return exchanges


class TestFlowKey:
    def test_canonical_both_directions(self):
        up = IpPacket(CLIENT_IP, SERVER_IP, TcpSegment(40_000, 80, 0, 0, TcpFlags.ACK))
        down = IpPacket(SERVER_IP, CLIENT_IP, TcpSegment(80, 40_000, 0, 0, TcpFlags.ACK))
        k1, d1 = FlowKey.from_packet(up, up.payload)
        k2, d2 = FlowKey.from_packet(down, down.payload)
        assert k1 == k2
        assert d1 != d2

    def test_str_readable(self):
        up = IpPacket(CLIENT_IP, SERVER_IP, TcpSegment(40_000, 80, 0, 0, TcpFlags.ACK))
        key, _ = FlowKey.from_packet(up, up.payload)
        assert "10.0.0.1" in str(key)


class TestFlowCollection:
    def test_flow_assembled(self):
        flows = collect_flows(full_flow())
        assert len(flows) == 1
        flow = flows[0]
        assert flow.n_segments == 3 + 4 * 2
        assert flow.data_bytes_observed == 4000

    def test_non_tcp_exchanges_ignored(self):
        frame = make_data(STA, AP, AP, seq=1, body=b"not-ip-at-all")
        from repro.core.link.attempt import TransmissionAttempt

        duration = frame_airtime_us(frame.size_bytes, RATE_11)
        jframe = JFrame(
            timestamp_us=1000, kind=JFrameKind.VALID, channel=1,
            instances=[], frame=frame, duration_us=duration,
        )
        attempt = TransmissionAttempt(STA, AP, data=jframe)
        junk = FrameExchange(STA, AP, attempts=[attempt])
        assert collect_flows([junk]) == []

    def test_two_flows_separate(self):
        a = full_flow(t0=1_000_000)
        b = [
            tcp_exchange(5, 0, TcpFlags.SYN, 0, 2_000_000, uplink=True,
                         client_port=41_000)
        ]
        flows = collect_flows(a + b)
        assert len(flows) == 2


class TestHandshakeDetection:
    def test_complete_handshake(self):
        flows = collect_flows(full_flow())
        stats = TransportInference().run(flows)
        assert stats.handshakes_completed == 1
        assert flows[0].handshake_complete
        # The SYN observation anchors the flow (frame start time).
        assert flows[0].syn_time_us == flows[0].observations[0].time_us

    def test_syn_scan_not_completed(self):
        scan = [tcp_exchange(7, 0, TcpFlags.SYN, 0, 1_000, uplink=True)]
        flows = collect_flows(scan)
        stats = TransportInference().run(flows)
        assert stats.handshakes_completed == 0


class TestAckCoverageOracle:
    def test_ambiguous_exchange_upgraded(self):
        exchanges = full_flow(with_losses={1: {"delivered": None}})
        flows = collect_flows(exchanges)
        stats = TransportInference().run(flows)
        assert stats.exchanges_upgraded_by_ack_coverage == 1
        upgraded = [
            o.exchange
            for o in flows[0].observations
            if o.exchange.delivery_inferred_from_transport
        ]
        assert len(upgraded) == 1
        assert upgraded[0].delivered is True

    def test_retransmitted_segment_not_upgraded(self):
        exchanges = full_flow(
            with_losses={1: {"delivered": None, "retransmit": True}}
        )
        flows = collect_flows(exchanges)
        stats = TransportInference().run(flows)
        # The covering ACK follows the retransmission, so it proves nothing
        # about the first copy.
        assert stats.exchanges_upgraded_by_ack_coverage == 0


class TestLossClassification:
    def test_wireless_loss(self):
        exchanges = full_flow(
            with_losses={2: {"delivered": False, "retransmit": True}}
        )
        flows = collect_flows(exchanges)
        stats = TransportInference().run(flows)
        assert stats.loss_events == 1
        assert stats.wireless_losses == 1
        assert flows[0].loss_events[0].cause is LossCause.WIRELESS

    def test_wired_loss(self):
        # Link delivered the frame, yet TCP retransmitted: the drop was
        # beyond the wireless hop.
        exchanges = full_flow(
            with_losses={2: {"delivered": True, "retransmit": True}}
        )
        flows = collect_flows(exchanges)
        stats = TransportInference().run(flows)
        assert stats.loss_events == 1
        assert stats.wired_losses == 1

    def test_unknown_when_ambiguous(self):
        exchanges = full_flow(
            with_losses={2: {"delivered": None, "retransmit": True}}
        )
        flows = collect_flows(exchanges)
        stats = TransportInference().run(flows)
        assert stats.loss_events == 1
        assert stats.unknown_losses == 1

    def test_unseen_downlink_original_is_wired(self):
        """A downlink retransmission whose original never hit the air:
        the packet died in the wired network before reaching the AP."""
        t = 1_000_000
        exchanges = [
            tcp_exchange(100, 0, TcpFlags.SYN, 0, t, uplink=False),
            tcp_exchange(500, 101, TcpFlags.SYN | TcpFlags.ACK, 0, t + 5000,
                         uplink=True),
            tcp_exchange(101, 501, TcpFlags.ACK, 0, t + 10_000, uplink=False),
            # seq 101..1101 downlink observed; 1101..2101 never observed;
            # then 2101 observed, then 1101 retransmitted.
            tcp_exchange(101, 501, TcpFlags.ACK | TcpFlags.PSH, 1000,
                         t + 20_000, uplink=False, mac_seq=20),
            tcp_exchange(2101, 501, TcpFlags.ACK | TcpFlags.PSH, 1000,
                         t + 30_000, uplink=False, mac_seq=21),
            tcp_exchange(1101, 501, TcpFlags.ACK | TcpFlags.PSH, 1000,
                         t + 80_000, uplink=False, mac_seq=22),
        ]
        flows = collect_flows(exchanges)
        stats = TransportInference().run(flows)
        assert stats.loss_events == 1
        assert flows[0].loss_events[0].cause is LossCause.WIRED

    def test_no_losses_clean_flow(self):
        flows = collect_flows(full_flow())
        stats = TransportInference().run(flows)
        assert stats.loss_events == 0


class TestHiddenSegments:
    def test_ack_covering_hole_counts_omission(self):
        """Sequence hole covered by an ACK: the monitors missed a packet
        that was in fact delivered (Section 5.2)."""
        t = 1_000_000
        exchanges = [
            tcp_exchange(1000, 0, TcpFlags.SYN, 0, t, uplink=True),
            tcp_exchange(9000, 1001, TcpFlags.SYN | TcpFlags.ACK, 0,
                         t + 5_000, uplink=False),
            tcp_exchange(1001, 9001, TcpFlags.ACK, 0, t + 10_000, uplink=True),
            tcp_exchange(1001, 9001, TcpFlags.ACK | TcpFlags.PSH, 1000,
                         t + 20_000, uplink=True, mac_seq=30),
            # 2001..3001 never observed (monitor omission)...
            tcp_exchange(3001, 9001, TcpFlags.ACK | TcpFlags.PSH, 1000,
                         t + 40_000, uplink=True, mac_seq=31),
            # ...but the server ACK covers everything through 4001.
            tcp_exchange(9001, 4001, TcpFlags.ACK, 0, t + 50_000,
                         uplink=False),
        ]
        flows = collect_flows(exchanges)
        stats = TransportInference().run(flows)
        assert stats.hidden_segments_inferred == 1
        assert flows[0].inferred_hidden_segments == 1


class TestRttEstimation:
    def test_handshake_rtt_sampled(self):
        flows = collect_flows(full_flow())
        TransportInference().run(flows)
        assert flows[0].rtt_samples_us
        assert flows[0].rtt_samples_us[0] == pytest.approx(5_000)

    def test_retransmitted_segments_excluded(self):
        clean = collect_flows(full_flow())
        TransportInference().run(clean)
        lossy = collect_flows(
            full_flow(with_losses={1: {"delivered": False, "retransmit": True}})
        )
        TransportInference().run(lossy)
        # The lossy flow has one fewer valid data RTT sample.
        assert len(lossy[0].rtt_samples_us) == len(clean[0].rtt_samples_us) - 1

    def test_median_rtt(self):
        flows = collect_flows(full_flow())
        TransportInference().run(flows)
        assert flows[0].median_rtt_us is not None
        assert flows[0].median_rtt_us > 0
