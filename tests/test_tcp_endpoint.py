"""Unit tests for the TCP substrate: loss-free, lossy, and edge cases."""

import numpy as np
import pytest

from repro.net.packets import IpPacket, TcpFlags, TcpSegment
from repro.sim.kernel import Kernel
from repro.tcp.endpoint import (
    TcpDemux,
    TcpPeer,
    TcpState,
    seq_add,
    seq_leq,
    seq_lt,
)


class SimPath:
    """A one-way delivery path with fixed delay and seeded random loss."""

    def __init__(self, kernel, peer_getter, delay_us=1000, loss=0.0, rng=None):
        self.kernel = kernel
        self.peer_getter = peer_getter
        self.delay_us = delay_us
        self.loss = loss
        self.rng = rng or np.random.default_rng(0)
        self.delivered = 0
        self.dropped = 0

    def send(self, packet: IpPacket) -> None:
        if self.rng.random() < self.loss:
            self.dropped += 1
            return
        self.delivered += 1
        seg = packet.payload
        self.kernel.after(self.delay_us, lambda: self.peer_getter().handle(seg))


def make_pair(kernel, total_bytes, loss=0.0, seed=1, client_sends=True,
              segment_bytes=1000):
    """A connected client/server pair over symmetric lossy paths."""
    rng = np.random.default_rng(seed)
    holder = {}
    path_cs = SimPath(kernel, lambda: holder["server"], loss=loss,
                      rng=np.random.default_rng(seed + 100))
    path_sc = SimPath(kernel, lambda: holder["client"], loss=loss,
                      rng=np.random.default_rng(seed + 200))
    results = {}
    client = TcpPeer(
        kernel, path_cs, local_ip=1, local_port=40000,
        remote_ip=2, remote_port=80, rng=rng, is_client=True,
        bytes_to_send=total_bytes if client_sends else 0,
        segment_bytes=segment_bytes,
        on_complete=lambda ok: results.setdefault("client", ok),
    )
    server = TcpPeer(
        kernel, path_sc, local_ip=2, local_port=80,
        remote_ip=1, remote_port=40000, rng=rng, is_client=False,
        bytes_to_send=0 if client_sends else total_bytes,
        segment_bytes=segment_bytes,
        on_complete=lambda ok: results.setdefault("server", ok),
    )
    holder["client"] = client
    holder["server"] = server
    return client, server, results


class TestHandshakeAndTransfer:
    def test_loss_free_transfer_completes(self):
        kernel = Kernel()
        client, server, results = make_pair(kernel, total_bytes=10_000)
        client.open()
        kernel.run()
        assert results == {"client": True, "server": True}
        assert client.state is TcpState.DONE
        assert server.state is TcpState.DONE

    def test_receiver_sees_all_bytes(self):
        kernel = Kernel()
        client, server, _ = make_pair(kernel, total_bytes=25_000)
        client.open()
        kernel.run()
        # Server's rcv_nxt advanced past ISN+1 by payload + FIN.
        advanced = (server.rcv_nxt - seq_add(client.isn, 1)) % (1 << 32)
        assert advanced == 25_000 + 1  # payload + FIN

    def test_download_direction(self):
        kernel = Kernel()
        client, server, results = make_pair(
            kernel, total_bytes=8_000, client_sends=False
        )
        client.open()
        kernel.run()
        assert results == {"client": True, "server": True}
        assert server.stats.data_segments_sent == 8

    def test_no_retransmits_without_loss(self):
        kernel = Kernel()
        client, server, _ = make_pair(kernel, total_bytes=20_000)
        client.open()
        kernel.run()
        assert client.stats.retransmits_timeout == 0
        assert client.stats.retransmits_fast == 0

    def test_single_segment_flow(self):
        kernel = Kernel()
        client, _, results = make_pair(kernel, total_bytes=100)
        client.open()
        kernel.run()
        assert results["client"] is True
        assert client.stats.data_segments_sent == 1


class TestLossRecovery:
    @pytest.mark.parametrize("loss", [0.02, 0.08])
    def test_transfer_survives_loss(self, loss):
        kernel = Kernel()
        client, server, results = make_pair(
            kernel, total_bytes=40_000, loss=loss, seed=3
        )
        client.open()
        kernel.run()
        assert results.get("client") is True
        assert results.get("server") is True

    def test_loss_causes_retransmissions(self):
        kernel = Kernel()
        client, _, _ = make_pair(kernel, total_bytes=60_000, loss=0.1, seed=5)
        client.open()
        kernel.run()
        total_retx = (
            client.stats.retransmits_timeout + client.stats.retransmits_fast
        )
        assert total_retx > 0

    def test_heavy_loss_aborts_eventually(self):
        kernel = Kernel()
        client, _, results = make_pair(kernel, total_bytes=5_000, loss=1.0)
        client.open()
        kernel.run()
        assert results.get("client") is False
        assert client.state is TcpState.ABORTED

    def test_fast_retransmit_triggers_on_dupacks(self):
        kernel = Kernel()
        # Drop exactly one data segment by hand: use a path that drops the
        # 2nd client payload packet only.
        holder = {}

        class OneDrop:
            def __init__(self):
                self.count = 0

            def send(self, packet):
                seg = packet.payload
                if seg.payload_len > 0:
                    self.count += 1
                    if self.count == 2:
                        return  # drop
                kernel.after(500, lambda: holder["server"].handle(seg))

        class Direct:
            def send(self, packet):
                seg = packet.payload
                kernel.after(500, lambda: holder["client"].handle(seg))

        rng = np.random.default_rng(0)
        client = TcpPeer(
            kernel, OneDrop(), 1, 40000, 2, 80, rng, is_client=True,
            bytes_to_send=8_000, segment_bytes=1000,
        )
        server = TcpPeer(
            kernel, Direct(), 2, 80, 1, 40000, rng, is_client=False,
        )
        holder["client"] = client
        holder["server"] = server
        client.open()
        kernel.run()
        assert client.stats.retransmits_fast >= 1
        assert client.state is TcpState.DONE


class TestSequenceMath:
    def test_seq_lt_basic(self):
        assert seq_lt(1, 2)
        assert not seq_lt(2, 1)
        assert not seq_lt(5, 5)

    def test_seq_lt_wraparound(self):
        assert seq_lt(0xFFFFFFF0, 5)
        assert not seq_lt(5, 0xFFFFFFF0)

    def test_seq_leq(self):
        assert seq_leq(5, 5)
        assert seq_leq(4, 5)

    def test_seq_add_wraps(self):
        assert seq_add(0xFFFFFFFF, 2) == 1

    def test_flow_with_wrapping_isn(self):
        kernel = Kernel()
        client, server, results = make_pair(kernel, total_bytes=12_000, seed=2)
        client.isn = 0xFFFFF000  # force wraparound mid-flow
        client.snd_una = client.snd_nxt = client.isn
        client.open()
        kernel.run()
        assert results.get("client") is True


class TestDemux:
    def test_routes_by_four_tuple(self):
        demux = TcpDemux()
        seen = []
        demux.register(80, remote_ip=9, remote_port=1234, handler=seen.append)
        seg = TcpSegment(1234, 80, 0, 0, TcpFlags.SYN)
        assert demux.deliver(IpPacket(9, 2, seg))
        assert len(seen) == 1

    def test_unknown_connection_ignored(self):
        demux = TcpDemux()
        seg = TcpSegment(1234, 80, 0, 0, TcpFlags.SYN)
        assert not demux.deliver(IpPacket(9, 2, seg))

    def test_duplicate_registration_rejected(self):
        demux = TcpDemux()
        demux.register(80, 9, 1234, lambda s: None)
        with pytest.raises(ValueError):
            demux.register(80, 9, 1234, lambda s: None)
