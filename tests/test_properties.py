"""Cross-cutting property-based tests on core invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.sync.bootstrap import bootstrap_synchronization
from repro.core.sync.skew import ClockTrack
from repro.dot11.address import MacAddress
from repro.dot11.frame import make_data
from repro.dot11.serialize import frame_to_bytes
from repro.jtrace.io import RadioTrace
from repro.jtrace.records import RecordKind, TraceRecord
from repro.monitor.clock import RadioClock
from repro.sim.scenario import ClockConfig


def record_for(frame, radio_id, ts):
    raw = frame_to_bytes(frame)
    return TraceRecord(
        radio_id=radio_id, timestamp_us=ts, kind=RecordKind.VALID,
        channel=1, rate_mbps=11.0, rssi_dbm=-60.0, frame_len=len(raw),
        fcs=int.from_bytes(raw[-4:], "little"), snap=raw[:200],
        duration_us=100,
    )


SRC = MacAddress.parse("00:0c:0c:00:00:01")
DST = MacAddress.parse("00:0a:0a:00:00:01")


class TestClockProperties:
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        times=st.lists(
            st.integers(min_value=0, max_value=30_000_000),
            min_size=2, max_size=40,
        ),
    )
    @settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
    def test_radio_clock_monotone(self, seed, times):
        clock = RadioClock(np.random.default_rng(seed), ClockConfig())
        previous = None
        for t in sorted(times):
            local = clock.local_time_us(t)
            if previous is not None:
                assert local >= previous[1] or t == previous[0]
            previous = (t, local)

    @given(
        offset=st.floats(min_value=-1e6, max_value=1e6),
        local=st.floats(min_value=0, max_value=1e7),
        universal=st.floats(min_value=0, max_value=1e7),
    )
    @settings(max_examples=100)
    def test_resync_fixes_the_anchor_point(self, offset, local, universal):
        track = ClockTrack(radio_id=0, offset_us=offset)
        track.resync(local, universal)
        assert abs(track.universal_us(local) - universal) < 1e-6

    @given(
        skew_ppm=st.floats(min_value=-100, max_value=100),
        t1=st.floats(min_value=0, max_value=1e6),
        t2=st.floats(min_value=0, max_value=1e6),
    )
    @settings(max_examples=100)
    def test_universal_mapping_is_order_preserving(self, skew_ppm, t1, t2):
        track = ClockTrack(radio_id=0, offset_us=0.0, skew_ppm=skew_ppm)
        lo, hi = sorted((t1, t2))
        assert track.universal_us(lo) <= track.universal_us(hi)


class TestBootstrapProperties:
    @given(
        offsets=st.lists(
            st.integers(min_value=-200_000, max_value=200_000),
            min_size=2, max_size=6,
        ),
        n_frames=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_offsets_recover_relative_clock_error(self, offsets, n_frames):
        """With every radio hearing every reference frame, bootstrap must
        recover all pairwise clock offsets exactly."""
        frames = [
            make_data(SRC, DST, DST, seq=i, body=bytes([i]) * 4)
            for i in range(n_frames)
        ]
        traces = []
        for radio_id, offset in enumerate(offsets):
            records = [
                record_for(frame, radio_id, 10_000 * (i + 1) + offset)
                for i, frame in enumerate(frames)
            ]
            traces.append(RadioTrace(radio_id, 1, records))
        result = bootstrap_synchronization(traces)
        assert result.fully_synchronized
        base = result.offsets_us[0] + offsets[0]
        for radio_id, offset in enumerate(offsets):
            # universal = local + T  =>  T_r + offset_r constant.
            assert result.offsets_us[radio_id] + offset == base


class TestUnifierProperties:
    @given(
        n_radios=st.integers(min_value=1, max_value=6),
        n_frames=st.integers(min_value=1, max_value=15),
        jitter=st.integers(min_value=0, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_conservation_of_records(self, n_radios, n_frames, jitter):
        """Every input record lands in exactly one jframe."""
        from repro.core.sync.bootstrap import BootstrapResult
        from repro.core.unify.unifier import Unifier

        rng = np.random.default_rng(n_radios * 100 + n_frames)
        frames = [
            make_data(SRC, DST, DST, seq=i % 4096, body=bytes([i % 251]) * 6)
            for i in range(n_frames)
        ]
        traces = []
        total = 0
        for radio_id in range(n_radios):
            records = []
            for i, frame in enumerate(frames):
                if rng.random() < 0.3:
                    continue  # this radio missed the frame
                ts = 5_000 * (i + 1) + int(rng.integers(0, jitter + 1))
                records.append(record_for(frame, radio_id, ts))
            total += len(records)
            traces.append(RadioTrace(radio_id, 1, records))
        bootstrap = BootstrapResult(
            offsets_us={r: 0.0 for r in range(n_radios)}
        )
        result = Unifier().unify(traces, bootstrap)
        assert result.stats.instances_unified == total
        assert sum(jf.n_instances for jf in result.jframes) == total
        # No jframe contains the same radio twice.
        for jf in result.jframes:
            radios = jf.radios
            assert len(radios) == len(set(radios))

    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_jframes_sorted(self, seed):
        from repro.core.sync.bootstrap import BootstrapResult
        from repro.core.unify.unifier import Unifier

        rng = np.random.default_rng(seed)
        records = []
        for i in range(30):
            frame = make_data(SRC, DST, DST, seq=i % 4096, body=bytes([i]) * 3)
            records.append(
                record_for(frame, 0, int(rng.integers(0, 1_000_000)))
            )
        trace = RadioTrace(0, 1, records).sorted_by_local_time()
        result = Unifier().unify([trace], BootstrapResult(offsets_us={0: 0.0}))
        stamps = [jf.timestamp_us for jf in result.jframes]
        assert stamps == sorted(stamps)
