"""Service-mode liveness: watermarks advance, queues stay bounded.

Parity says a daemon run ends in the right state; liveness says it
*behaves* like a service along the way:

* the emission watermark is monotone — it never regresses, including
  across a checkpoint/restore boundary;
* windowed pass output is published strictly before end-of-stream
  (a batch pipeline only ever reports at ``finish()``);
* a consumer that stops draining bounds queue depth at the configured
  maximum, never O(trace) — producers feel backpressure;
* a source that stops producing trips a deterministic idle limit
  (:class:`ServiceStalled`) instead of deadlocking the daemon.
"""

import pytest

from repro.core.passes import PipelinePass
from repro.jtrace.records import RecordKind, TraceRecord
from repro.service import JigsawDaemon, QueueFeed, RadioQueue, ServiceStalled
from repro.service.queues import feed_pump_from_records
from repro.service.windows import WindowedSummaryPass
from repro.sim import ScenarioConfig
from repro.sim.registry import scenario_config
from repro.sim.stream import live_feed

pytestmark = pytest.mark.service

WINDOW_US = 100_000
CHECKPOINT_EVERY = 60


def tiny_config():
    return ScenarioConfig.tiny(seed=13)


class WatermarkProbe(PipelinePass):
    """Records the watermark at every sealing opportunity.

    The observation list is part of the pass state, so it rides inside
    checkpoints: a restored daemon keeps appending to the prefix the
    crashed daemon accumulated — exactly the sequence the monotonicity
    assertion must hold over.
    """

    name = "watermark_probe"

    def __init__(self):
        self.observed = []

    def seal_ready(self, watermark_us):
        self.observed.append(watermark_us)
        return []

    def finish(self, context):
        return list(self.observed)


def make_record(radio_id, ts):
    return TraceRecord(
        radio_id=radio_id,
        timestamp_us=ts,
        kind=RecordKind.VALID,
        channel=6,
        rate_mbps=11.0,
        rssi_dbm=-60.0,
        frame_len=3,
        fcs=0xABC,
        snap=b"abc",
        duration_us=100,
    )


class TestWatermarkMonotonicity:
    def test_watermark_never_regresses_uninterrupted(self):
        daemon = JigsawDaemon(
            live_feed(tiny_config()), passes=[WatermarkProbe()]
        )
        svc = daemon.serve()
        observed = svc.report.passes["watermark_probe"]
        assert observed, "the probe never saw a sealing opportunity"
        assert all(
            a <= b for a, b in zip(observed, observed[1:])
        ), "watermark regressed mid-run"
        assert observed[-1] > float("-inf")

    def test_watermark_never_regresses_across_restore(self, tmp_path):
        checkpoint = tmp_path / "svc.ckpt"
        d1 = JigsawDaemon(
            live_feed(tiny_config()),
            passes=[WatermarkProbe()],
            checkpoint_path=checkpoint,
            checkpoint_every=CHECKPOINT_EVERY,
        )
        assert d1.serve(stop_after_records=3 * CHECKPOINT_EVERY) is None
        d2 = JigsawDaemon.restore(
            checkpoint, live_feed(tiny_config()),
            checkpoint_every=CHECKPOINT_EVERY,
        )
        svc = d2.serve()
        observed = svc.report.passes["watermark_probe"]
        # The restored probe continues the checkpointed prefix: one list,
        # spanning the restore boundary, still monotone.
        assert len(observed) > 1
        assert all(
            a <= b for a, b in zip(observed, observed[1:])
        ), "watermark regressed across checkpoint/restore"


class TestMidStreamPublication:
    def test_windows_published_before_end_of_stream(self):
        """Stop the daemon mid-trace: sealed windows must already be
        out, which is exactly what ``finish()``-only reporting can't
        do.

        Uses the flash_crowd shape: its dense traffic keeps every
        sender's exchange turning over, so the exchange emission bound
        (the daemon watermark) clears whole windows well before
        end-of-stream.  Sparse shapes can pin the bound on a long-open
        exchange until the final horizon sweep.
        """
        daemon = JigsawDaemon(
            live_feed(scenario_config("flash_crowd", "tiny", seed=13)),
            passes=[WindowedSummaryPass(WINDOW_US)],
        )
        assert daemon.serve(stop_after_records=3_000) is None  # mid-trace
        published = daemon.published_windows
        assert published, "no window published before end of stream"
        assert all(
            w.end_us <= daemon.watermark_us for w in published
        ), "published a window the watermark had not passed"

    def test_published_set_grows_to_final(self):
        daemon = JigsawDaemon(
            live_feed(tiny_config()),
            passes=[WindowedSummaryPass(WINDOW_US)],
        )
        svc = daemon.serve()
        keys = [w.key for w in svc.published]
        assert len(keys) == len(set(keys)), "ledger published duplicates"
        # Window ids are gap-free from 0: the sealed sequence is dense.
        ids = sorted(w.window_id for w in svc.published)
        assert ids == list(range(len(ids)))
        total_jframes = sum(
            w.payload["jframes"] for w in svc.published
        )
        assert total_jframes == svc.report.unification.stats.jframes


class TestQueueBackpressure:
    def test_slow_consumer_bounds_depth(self):
        """Producer keeps pushing, consumer never drains: depth caps at
        maxlen and the producer observes backpressure."""
        queue = RadioQueue(radio_id=1, maxlen=32)
        accepted = rejected = 0
        for i in range(10_000):
            if queue.push(make_record(1, 1000 + i)):
                accepted += 1
            else:
                rejected += 1
        assert queue.depth == 32
        assert accepted == 32
        assert rejected == 10_000 - 32

    def test_depth_recovers_after_drain(self):
        queue = RadioQueue(radio_id=1, maxlen=4)
        for i in range(4):
            assert queue.push(make_record(1, i))
        assert not queue.push(make_record(1, 99))
        assert queue.pop() is not None
        assert queue.push(make_record(1, 100))
        assert queue.depth == 4

    def test_queue_feed_depth_is_maxlen_not_trace_length(self):
        records = {1: [make_record(1, 1000 + 10 * i) for i in range(5000)]}
        feed = QueueFeed([1], feed_pump_from_records(records), maxlen=64)
        # One pull primes the pump; the pump pushes until backpressure.
        first = feed.next_record(1)
        assert first is records[1][0]
        assert feed.queue(1).depth <= 64
        # Drain everything; the bound holds throughout.
        count = 1
        while True:
            record = feed.next_record(1)
            if record is None:
                break
            assert feed.queue(1).depth <= 64
            count += 1
        assert count == 5000

    def test_push_after_close_rejected(self):
        queue = RadioQueue(radio_id=1, maxlen=4)
        queue.close()
        with pytest.raises(ValueError, match="close"):
            queue.push(make_record(1, 1))


class TestStalledSource:
    def test_stalled_source_trips_idle_limit(self):
        """A pump that never produces must raise, not deadlock."""

        def dead_pump(feed, radio_id):
            return None  # no push, no close: a hung uplink

        feed = QueueFeed([1], dead_pump, idle_limit=25)
        with pytest.raises(ServiceStalled, match="25 pump attempts"):
            feed.next_record(1)

    def test_slow_but_alive_source_is_not_stalled(self):
        """Progress on any attempt resets the idle counter."""
        calls = {"n": 0}
        records = [make_record(1, 1000 + i) for i in range(10)]

        def trickle_pump(feed, radio_id):
            calls["n"] += 1
            if calls["n"] % 7 == 0:  # mostly idle, occasionally delivers
                if records:
                    feed.push(1, records.pop(0))
                else:
                    feed.close_radio(1)

        feed = QueueFeed([1], trickle_pump, idle_limit=10)
        out = []
        while True:
            record = feed.next_record(1)
            if record is None:
                break
            out.append(record)
        assert len(out) == 10

    def test_closed_stream_yields_none_forever(self):
        feed = QueueFeed([1], lambda f, r: f.close_radio(1), idle_limit=5)
        assert feed.next_record(1) is None
        assert feed.next_record(1) is None
