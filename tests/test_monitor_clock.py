"""Unit tests for the imperfect radio clock model."""

import numpy as np
import pytest

from repro.monitor.clock import PerfectClock, RadioClock
from repro.sim.scenario import ClockConfig


def make_clock(seed=0, **overrides):
    config = ClockConfig(**overrides)
    return RadioClock(np.random.default_rng(seed), config)


class TestRadioClock:
    def test_offset_applied_at_time_zero(self):
        clock = make_clock(skew_ppm_sigma=0.0, drift_ppm_per_s_sigma=0.0)
        assert clock.local_time_us(0) == int(round(clock.offset_us))

    def test_skew_accumulates_linearly(self):
        clock = make_clock(
            seed=1, offset_spread_us=0.0, drift_ppm_per_s_sigma=0.0,
            skew_ppm_sigma=50.0,
        )
        skew = clock.initial_skew_ppm
        local = clock.local_time_us(1_000_000)
        expected = 1_000_000 * (1 + skew * 1e-6)
        assert local == pytest.approx(expected, abs=2)

    def test_zero_error_clock_is_identity(self):
        clock = make_clock(
            offset_spread_us=0.0, skew_ppm_sigma=0.0, drift_ppm_per_s_sigma=0.0
        )
        for t in (0, 17, 999_983, 5_000_000):
            assert clock.local_time_us(t) == t

    def test_monotonic_queries_enforced(self):
        clock = make_clock()
        clock.local_time_us(1000)
        with pytest.raises(ValueError):
            clock.local_time_us(999)

    def test_local_time_monotone(self):
        clock = make_clock(seed=7, skew_ppm_sigma=80.0, drift_ppm_per_s_sigma=0.5)
        values = [clock.local_time_us(t) for t in range(0, 10_000_000, 50_000)]
        assert values == sorted(values)

    def test_skew_bounded_by_standard(self):
        clock = make_clock(seed=3, skew_ppm_sigma=500.0, max_skew_ppm=100.0)
        assert abs(clock.initial_skew_ppm) <= 100.0
        clock.local_time_us(60_000_000)  # a minute of drift updates
        assert abs(clock.current_skew_ppm) <= 100.0

    def test_drift_changes_skew(self):
        clock = make_clock(seed=5, drift_ppm_per_s_sigma=5.0)
        initial = clock.current_skew_ppm
        clock.local_time_us(30_000_000)
        assert clock.current_skew_ppm != initial

    def test_two_clocks_diverge(self):
        a = make_clock(seed=11, offset_spread_us=0.0, skew_ppm_sigma=50.0)
        b = make_clock(seed=12, offset_spread_us=0.0, skew_ppm_sigma=50.0)
        t = 10_000_000
        assert a.local_time_us(t) != b.local_time_us(t)

    def test_perfect_clock(self):
        clock = PerfectClock()
        assert clock.local_time_us(12345) == 12345
        assert clock.current_skew_ppm == 0.0
