"""Unit tests for trace records and trace file I/O."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.jtrace.io import (
    RadioTrace,
    read_trace,
    read_traces,
    write_trace,
    write_traces,
)
from repro.jtrace.records import (
    RecordKind,
    TraceRecord,
    record_from_bytes,
    record_to_bytes,
)


def make_record(radio_id=1, ts=1000, kind=RecordKind.VALID, snap=b"abc",
                txid=7, rate=11.0):
    return TraceRecord(
        radio_id=radio_id,
        timestamp_us=ts,
        kind=kind,
        channel=6,
        rate_mbps=rate,
        rssi_dbm=-63.0,
        frame_len=len(snap),
        fcs=0xDEADBEEF,
        snap=snap if kind is not RecordKind.PHY_ERROR else b"",
        duration_us=222,
        truth_txid=txid,
    )


class TestTraceRecord:
    def test_round_trip(self):
        record = make_record()
        raw = record_to_bytes(record)
        decoded, offset = record_from_bytes(raw)
        assert decoded == record
        assert offset == len(raw)

    def test_negative_timestamp_survives(self):
        # Clock offsets can push local time negative near trace start.
        record = make_record(ts=-123_456)
        decoded, _ = record_from_bytes(record_to_bytes(record))
        assert decoded.timestamp_us == -123_456

    def test_phy_error_has_no_snap(self):
        with pytest.raises(ValueError):
            TraceRecord(
                radio_id=1, timestamp_us=0, kind=RecordKind.PHY_ERROR,
                channel=1, rate_mbps=1.0, rssi_dbm=-90.0, frame_len=0,
                fcs=0, snap=b"oops", duration_us=100,
            )

    def test_oversized_snap_rejected(self):
        with pytest.raises(ValueError):
            make_record(snap=b"z" * 500)

    def test_kind_properties(self):
        assert RecordKind.VALID.has_frame
        assert RecordKind.CORRUPT.has_frame
        assert not RecordKind.PHY_ERROR.has_frame
        assert make_record().is_valid_frame

    def test_stream_of_records(self):
        records = [make_record(ts=t) for t in range(0, 5000, 1000)]
        raw = b"".join(record_to_bytes(r) for r in records)
        decoded = []
        offset = 0
        while offset < len(raw):
            record, offset = record_from_bytes(raw, offset)
            decoded.append(record)
        assert decoded == records

    def test_truncated_raises(self):
        raw = record_to_bytes(make_record())
        with pytest.raises(ValueError):
            record_from_bytes(raw[:10])
        with pytest.raises(ValueError):
            record_from_bytes(raw[:-2])

    @given(
        ts=st.integers(min_value=-(2**40), max_value=2**40),
        snap=st.binary(max_size=200),
        rate=st.sampled_from([1.0, 2.0, 5.5, 11.0, 6.0, 54.0]),
    )
    def test_round_trip_property(self, ts, snap, rate):
        record = make_record(ts=ts, snap=snap, rate=rate)
        decoded, _ = record_from_bytes(record_to_bytes(record))
        assert decoded == record


class TestTraceFiles:
    def test_write_read_round_trip(self, tmp_path):
        trace = RadioTrace(radio_id=5, channel=6)
        for t in range(0, 10_000, 500):
            trace.append(make_record(radio_id=5, ts=t))
        write_trace(trace, tmp_path)
        loaded = read_trace(tmp_path / "radio_0005.jtr.gz")
        assert loaded.radio_id == 5
        assert loaded.channel == 6
        assert loaded.records == trace.records

    def test_index_mismatch_detected(self, tmp_path):
        trace = RadioTrace(radio_id=1, channel=1, records=[make_record()])
        write_trace(trace, tmp_path)
        meta = tmp_path / "radio_0001.meta.json"
        meta.write_text(meta.read_text().replace('"records": 1', '"records": 2'))
        with pytest.raises(ValueError):
            read_trace(tmp_path / "radio_0001.jtr.gz")

    def test_multi_trace_directory(self, tmp_path):
        traces = [
            RadioTrace(radio_id=i, channel=1, records=[make_record(radio_id=i)])
            for i in range(4)
        ]
        write_traces(traces, tmp_path)
        loaded = read_traces(tmp_path)
        assert [t.radio_id for t in loaded] == [0, 1, 2, 3]

    def test_empty_trace(self, tmp_path):
        trace = RadioTrace(radio_id=9, channel=11)
        write_trace(trace, tmp_path)
        loaded = read_trace(tmp_path / "radio_0009.jtr.gz")
        assert len(loaded) == 0
        assert loaded.first_timestamp_us is None

    def test_sorted_by_local_time(self):
        trace = RadioTrace(
            radio_id=1, channel=1,
            records=[make_record(ts=500), make_record(ts=100)],
        )
        ordered = trace.sorted_by_local_time()
        assert [r.timestamp_us for r in ordered] == [100, 500]


class TestFramingHint:
    """The sidecar record-boundary index and its byte-verified use."""

    def _records(self, n=8):
        return [
            make_record(ts=1000 + 10 * i, snap=bytes([65 + i]) * (5 + i))
            for i in range(n)
        ]

    def test_sidecar_carries_framing_index(self, tmp_path):
        import base64
        import json
        import struct

        records = self._records()
        trace = RadioTrace(radio_id=3, channel=6, records=records)
        data_path = write_trace(trace, tmp_path)
        meta = json.loads(
            (tmp_path / "radio_0003.meta.json").read_text()
        )
        packed = base64.b64decode(meta["snap_lens_b64"])
        snap_lens = struct.unpack(f"<{len(records)}H", packed)
        assert list(snap_lens) == [len(r.snap) for r in records]
        assert data_path.exists()

    def test_fast_forward_matches_serial_scan(self):
        from repro.jtrace.records import FramedRun, FramingHint

        records = self._records()
        buffer = b"".join(record_to_bytes(r) for r in records)
        hint = FramingHint([len(r.snap) for r in records])
        plain = FramedRun(buffer)
        hinted = FramedRun(buffer, 0, hint, 0)
        assert hinted.offsets == plain.offsets
        assert hinted.next_offset == plain.next_offset
        # The fast-forward really did the framing (full verified chain).
        resume, verified = hint.fast_forward(buffer, 0, 0)
        assert verified == plain.offsets
        assert resume == plain.next_offset

    def test_partial_tail_stops_where_the_scan_stops(self):
        from repro.jtrace.records import FramedRun, FramingHint

        records = self._records()
        full = b"".join(record_to_bytes(r) for r in records)
        buffer = full[:-5]  # cut inside the last record
        hint = FramingHint([len(r.snap) for r in records])
        plain = FramedRun(buffer)
        hinted = FramedRun(buffer, 0, hint, 0)
        assert hinted.offsets == plain.offsets
        assert hinted.next_offset == plain.next_offset

    def test_stale_hint_degrades_to_identical_framing(self):
        from repro.jtrace.records import FramedRun, FramingHint

        records = self._records()
        buffer = b"".join(record_to_bytes(r) for r in records)
        # An index describing different records: byte verification must
        # reject it at the first divergent claim and the serial scan
        # must deliver exactly the unhinted framing.
        stale = FramingHint([len(r.snap) + 1 for r in records])
        plain = FramedRun(buffer)
        hinted = FramedRun(buffer, 0, stale, 0)
        assert hinted.offsets == plain.offsets
        assert hinted.next_offset == plain.next_offset

    def test_damaged_snap_len_rejected_mid_chain(self):
        from repro.jtrace.records import (
            FramedRun,
            FramingHint,
            _HEADER,
            _SNAP_LEN_OFFSET,
        )

        records = self._records()
        encoded = [bytearray(record_to_bytes(r)) for r in records]
        # Smash record 4's snap_len on disk; the sidecar still claims
        # the clean value.
        target = encoded[4]
        target[_SNAP_LEN_OFFSET] ^= 0xFF
        buffer = b"".join(bytes(e) for e in encoded)
        hint = FramingHint([len(r.snap) for r in records])
        plain = FramedRun(buffer)
        hinted = FramedRun(buffer, 0, hint, 0)
        assert hinted.offsets == plain.offsets
        assert hinted.next_offset == plain.next_offset
        # The verified prefix ends exactly at the damaged record.
        resume, verified = hint.fast_forward(buffer, 0, 0)
        assert len(verified) == 4
        assert resume == sum(_HEADER.size + len(r.snap) for r in records[:4])

    def test_unknown_offset_is_ignored(self):
        from repro.jtrace.records import FramingHint

        records = self._records()
        buffer = b"".join(record_to_bytes(r) for r in records)
        hint = FramingHint([len(r.snap) for r in records])
        # A resynchronized position the table does not know: no claim.
        assert hint.fast_forward(buffer, 3, 0) == (3, [])

    def test_multi_chunk_stream_base_accounting(self, tmp_path):
        import json

        from repro.jtrace.io import (
            _framing_hint_from_meta,
            _meta_path,
            iter_record_batches,
        )

        records = self._records(32)
        trace = RadioTrace(radio_id=5, channel=6, records=records)
        data_path = write_trace(trace, tmp_path)
        meta = json.loads(_meta_path(data_path).read_text())
        hint = _framing_hint_from_meta(meta, vectorized=True)
        assert hint is not None
        # Chunks far smaller than the stream force the carried-tail path,
        # so the hint must anchor through stream_base, not buffer offsets.
        hinted = [
            r
            for batch in iter_record_batches(
                data_path, chunk_bytes=64, framing_hint=hint
            )
            for r in batch.records
        ]
        scalar = [
            r
            for batch in iter_record_batches(
                data_path, chunk_bytes=64, vectorized=False
            )
            for r in batch.records
        ]
        assert hinted == scalar == records


class TestDecodeAheadLifecycle:
    """Closing a stream must not leave its decode-ahead thread running."""

    @staticmethod
    def _alive_readers():
        import threading

        return [
            t
            for t in threading.enumerate()
            if t.name.startswith("decode-ahead:") and t.is_alive()
        ]

    def _write(self, tmp_path, n=300):
        trace = RadioTrace(
            radio_id=5,
            channel=6,
            records=[make_record(radio_id=5, ts=1000 + 50 * i)
                     for i in range(n)],
        )
        return write_trace(trace, tmp_path)

    def test_close_joins_reader_thread(self, tmp_path):
        from repro.jtrace.io import open_trace_stream

        data_path = self._write(tmp_path)
        stream = open_trace_stream(data_path, decode_ahead=2, chunk_bytes=256)
        assert stream.ensure_index(0)  # reader thread is live behind this
        stream.close()
        assert self._alive_readers() == []
        stream.close()  # idempotent

    def test_context_manager_joins_reader_thread(self, tmp_path):
        from repro.jtrace.io import open_trace_stream

        data_path = self._write(tmp_path)
        with open_trace_stream(
            data_path, decode_ahead=2, chunk_bytes=256
        ) as stream:
            assert stream.ensure_index(5)
        assert self._alive_readers() == []

    def test_abandoned_mid_trace_then_closed(self, tmp_path):
        """A consumer that stops pulling mid-trace (bounded queue full,
        worker parked in its put loop) still joins promptly on close."""
        from repro.jtrace.io import open_trace_stream

        data_path = self._write(tmp_path, n=600)
        stream = open_trace_stream(data_path, decode_ahead=1, chunk_bytes=128)
        assert stream.ensure_index(0)
        stream.close()
        assert self._alive_readers() == []
