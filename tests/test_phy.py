"""Unit tests for the propagation and reception models."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dot11.rates import RATE_1, RATE_11, RATE_54
from repro.phy.noisefloor import BroadbandInterferer, ambient_interference_dbm
from repro.phy.propagation import PropagationModel, distance_m
from repro.phy.reception import (
    ReceptionModel,
    ReceptionOutcome,
    combine_power_dbm,
    decode_probability,
    sinr_db,
)


def model(shadowing=0.0):
    return PropagationModel(shadowing_sigma_db=shadowing)


class TestPropagation:
    def test_loss_grows_with_distance(self):
        m = model()
        near = m.path_loss_db((0, 0, 0), (5, 0, 0))
        far = m.path_loss_db((0, 0, 0), (50, 0, 0))
        assert far > near

    def test_loss_symmetric(self):
        m = model(shadowing=4.0)
        a, b = (3.0, 7.0, 2.5), (40.0, 12.0, 6.5)
        assert m.path_loss_db(a, b) == pytest.approx(m.path_loss_db(b, a))

    def test_floor_crossing_adds_loss(self):
        m = model()
        # Same 10 m separation, with and without a floor crossing.
        x = math.sqrt(10.0**2 - 4.0**2)
        same_floor = m.path_loss_db((0, 0, 2.5), (10, 0, 2.5))
        one_floor = m.path_loss_db((0, 0, 2.5), (x, 0, 6.5))
        assert one_floor == pytest.approx(same_floor + m.floor_loss_db)

    def test_sub_meter_clamped_to_reference(self):
        m = model()
        assert m.path_loss_db((0, 0, 0), (0.1, 0, 0)) == pytest.approx(40.0)

    def test_shadowing_stable_across_calls(self):
        m = model(shadowing=4.0)
        a, b = (1.0, 2.0, 2.5), (30.0, 4.0, 2.5)
        assert m.path_loss_db(a, b) == m.path_loss_db(a, b)

    def test_shadowing_varies_between_links(self):
        m = model(shadowing=4.0)
        base = (0.0, 0.0, 2.5)
        losses = {
            round(m.path_loss_db(base, (20.0 + dx, 5.0, 2.5)), 3)
            for dx in range(8)
        }
        assert len(losses) > 4  # not all equal: shadowing is per-link

    def test_rssi_is_power_minus_loss(self):
        m = model()
        loss = m.path_loss_db((0, 0, 0), (10, 0, 0))
        assert m.rssi_dbm(15.0, (0, 0, 0), (10, 0, 0)) == pytest.approx(15.0 - loss)

    @given(
        x=st.floats(min_value=1.0, max_value=100.0),
        y=st.floats(min_value=0.0, max_value=30.0),
    )
    def test_loss_always_above_reference(self, x, y):
        assert model().path_loss_db((0, 0, 0), (x, y, 0)) >= 40.0

    def test_distance(self):
        assert distance_m((0, 0, 0), (3, 4, 0)) == pytest.approx(5.0)


class TestSinrMath:
    def test_combine_power_of_equal_sources(self):
        # Two equal powers sum to +3 dB.
        assert combine_power_dbm([-60.0, -60.0]) == pytest.approx(-57.0, abs=0.05)

    def test_combine_empty_is_minus_inf(self):
        assert combine_power_dbm([]) == -math.inf

    def test_sinr_without_interference_is_snr(self):
        assert sinr_db(-60.0, [], noise_floor_dbm=-94.0) == pytest.approx(34.0)

    def test_interference_lowers_sinr(self):
        clean = sinr_db(-60.0, [], noise_floor_dbm=-94.0)
        jammed = sinr_db(-60.0, [-65.0], noise_floor_dbm=-94.0)
        assert jammed < clean

    def test_decode_probability_monotone_in_snr(self):
        probs = [decode_probability(snr, RATE_11) for snr in range(0, 30, 2)]
        assert probs == sorted(probs)

    def test_low_rate_more_robust(self):
        assert decode_probability(5.0, RATE_1) > decode_probability(5.0, RATE_54)


class TestReceptionModel:
    def make(self, seed=0):
        return ReceptionModel(rng=np.random.default_rng(seed))

    def test_strong_signal_decodes(self):
        m = self.make()
        outcomes = {m.receive(-40.0, RATE_11) for _ in range(50)}
        assert outcomes == {ReceptionOutcome.DECODED}

    def test_below_sensitivity_missed(self):
        m = self.make()
        assert m.receive(-95.0, RATE_1) is ReceptionOutcome.MISSED

    def test_marginal_signal_mixes_outcomes(self):
        m = self.make()
        outcomes = [m.receive(-84.0, RATE_11) for _ in range(300)]
        kinds = set(outcomes)
        assert ReceptionOutcome.DECODED not in kinds or len(kinds) > 1

    def test_deep_failure_is_phy_error(self):
        m = self.make()
        outcomes = [m.receive(-91.0, RATE_54) for _ in range(100)]
        assert ReceptionOutcome.PHY_ERROR in outcomes

    def test_interference_causes_losses(self):
        m = self.make()
        clean = sum(
            m.receive(-70.0, RATE_11) is ReceptionOutcome.DECODED
            for _ in range(200)
        )
        jammed = sum(
            m.receive(-70.0, RATE_11, interferers_dbm=[-68.0])
            is ReceptionOutcome.DECODED
            for _ in range(200)
        )
        assert jammed < clean

    def test_missed_not_observed(self):
        assert not ReceptionOutcome.MISSED.observed
        assert ReceptionOutcome.CORRUPT.observed

    def test_corrupt_bytes_changes_content(self):
        m = self.make()
        raw = bytes(range(64)) * 2
        assert m.corrupt_bytes(raw) != raw

    def test_corrupt_bytes_empty_input(self):
        assert self.make().corrupt_bytes(b"") == b""

    def test_corrupt_bytes_never_longer(self):
        m = self.make()
        raw = bytes(200)
        for _ in range(50):
            assert len(m.corrupt_bytes(raw)) <= len(raw)


class TestBroadbandInterferer:
    def test_duty_cycle(self):
        source = BroadbandInterferer(
            position=(0, 0, 0), period_us=100, duty_cycle=0.5
        )
        assert source.active_at(10)
        assert not source.active_at(60)
        assert source.active_at(110)

    def test_inactive_outside_window(self):
        source = BroadbandInterferer(
            position=(0, 0, 0), start_us=1000, stop_us=2000
        )
        assert not source.active_at(500)
        assert not source.active_at(2500)

    def test_ambient_levels_filter_inactive(self):
        prop = PropagationModel(shadowing_sigma_db=0.0)
        source = BroadbandInterferer(
            position=(0, 0, 0), period_us=100, duty_cycle=0.5
        )
        on = ambient_interference_dbm([source], 10, (5, 0, 0), prop)
        off = ambient_interference_dbm([source], 60, (5, 0, 0), prop)
        assert len(on) == 1 and len(off) == 0
