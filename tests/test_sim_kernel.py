"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import Kernel


class TestKernel:
    def test_events_fire_in_time_order(self):
        kernel = Kernel()
        fired = []
        kernel.at(30, lambda: fired.append("c"))
        kernel.at(10, lambda: fired.append("a"))
        kernel.at(20, lambda: fired.append("b"))
        kernel.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo(self):
        kernel = Kernel()
        fired = []
        for i in range(5):
            kernel.at(100, lambda i=i: fired.append(i))
        kernel.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_now_advances_during_run(self):
        kernel = Kernel()
        seen = []
        kernel.at(42, lambda: seen.append(kernel.now_us))
        kernel.run()
        assert seen == [42]

    def test_after_is_relative(self):
        kernel = Kernel()
        seen = []
        kernel.at(100, lambda: kernel.after(50, lambda: seen.append(kernel.now_us)))
        kernel.run()
        assert seen == [150]

    def test_cannot_schedule_in_past(self):
        kernel = Kernel()
        kernel.at(100, lambda: None)
        kernel.run()
        with pytest.raises(ValueError):
            kernel.at(50, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Kernel().after(-1, lambda: None)

    def test_cancel_prevents_firing(self):
        kernel = Kernel()
        fired = []
        handle = kernel.at(10, lambda: fired.append(1))
        handle.cancel()
        kernel.run()
        assert fired == []
        assert handle.cancelled

    def test_run_until_stops_at_boundary(self):
        kernel = Kernel()
        fired = []
        kernel.at(10, lambda: fired.append(10))
        kernel.at(20, lambda: fired.append(20))
        kernel.run_until(15)
        assert fired == [10]
        assert kernel.now_us == 15
        kernel.run_until(25)
        assert fired == [10, 20]

    def test_events_scheduled_during_run(self):
        kernel = Kernel()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                kernel.after(10, lambda: chain(n + 1))

        kernel.at(0, lambda: chain(0))
        kernel.run()
        assert fired == [0, 1, 2, 3]
        assert kernel.now_us == 30

    def test_pending_counts_live_events(self):
        kernel = Kernel()
        h1 = kernel.at(10, lambda: None)
        kernel.at(20, lambda: None)
        assert kernel.pending() == 2
        h1.cancel()
        assert kernel.pending() == 1

    def test_events_run_counter(self):
        kernel = Kernel()
        for t in range(5):
            kernel.at(t, lambda: None)
        kernel.run()
        assert kernel.events_run == 5
