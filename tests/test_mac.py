"""Integration tests for the MAC substrate: medium, DCF, stations, APs."""

import numpy as np
import pytest

from repro.dot11.address import MacAddress
from repro.dot11.channels import CHANNEL_1, CHANNEL_6
from repro.dot11.frame import FrameType, make_data
from repro.dot11.rates import B_RATES, G_RATES, RATE_1, RATE_11, RATE_54
from repro.mac.ap import AccessPoint
from repro.mac.medium import Medium
from repro.mac.station import Station, select_rate
from repro.phy.propagation import PropagationModel
from repro.sim.kernel import Kernel

AP_MAC = MacAddress.parse("00:0a:0a:00:00:01")
STA_MAC = MacAddress.parse("00:0c:0c:00:00:01")
STA2_MAC = MacAddress.parse("00:0c:0c:00:00:02")


def build_cell(
    seed=0,
    sta_pos=(5.0, 9.0, 1.0),
    protection_timeout_us=3_600_000_000,
    sta_ofdm=True,
    shadowing=0.0,
):
    kernel = Kernel()
    medium = Medium(kernel, PropagationModel(shadowing_sigma_db=shadowing))
    rng = np.random.default_rng(seed)
    ap = AccessPoint(
        kernel, medium, AP_MAC, (0.0, 9.0, 2.5), CHANNEL_1,
        tx_power_dbm=18.0, rng=np.random.default_rng(seed + 1),
        protection_timeout_us=protection_timeout_us,
    )
    sta = Station(
        kernel, medium, STA_MAC, sta_pos, tx_power_dbm=15.0,
        rng=np.random.default_rng(seed + 2), ap=ap,
        supports_ofdm=sta_ofdm, start_us=1_000,
    )
    return kernel, medium, ap, sta


class TestRateSelection:
    def test_strong_signal_picks_top_rate(self):
        assert select_rate(-40.0, G_RATES) is RATE_54

    def test_weak_signal_falls_back(self):
        rate = select_rate(-88.0, B_RATES)
        assert rate is RATE_1

    def test_mid_signal_intermediate(self):
        rate = select_rate(-80.0, B_RATES)
        assert rate.mbps < 11 or rate is RATE_11


class TestAssociation:
    def test_station_associates(self):
        kernel, _, ap, sta = build_cell()
        kernel.run_until(2_000_000)
        assert sta.associated
        assert ap.clients[STA_MAC].associated

    def test_handshake_frames_on_air(self):
        kernel, medium, ap, sta = build_cell()
        kernel.run_until(2_000_000)
        kinds = {tx.frame.ftype for tx in medium.history}
        assert FrameType.PROBE_REQUEST in kinds
        assert FrameType.PROBE_RESPONSE in kinds
        assert FrameType.AUTH in kinds
        assert FrameType.ASSOC_REQUEST in kinds
        assert FrameType.ASSOC_RESPONSE in kinds
        assert FrameType.ACK in kinds

    def test_ap_learns_client_capability(self):
        kernel, _, ap, sta = build_cell(sta_ofdm=False)
        kernel.run_until(2_000_000)
        assert not ap.clients[STA_MAC].supports_ofdm

    def test_callbacks_fire_on_association(self):
        kernel, _, _, sta = build_cell()
        fired = []
        sta.when_associated(lambda: fired.append(kernel.now_us))
        kernel.run_until(2_000_000)
        assert fired

    def test_when_associated_immediate_if_already(self):
        kernel, _, _, sta = build_cell()
        kernel.run_until(2_000_000)
        fired = []
        sta.when_associated(lambda: fired.append(True))
        assert fired == [True]


class TestBeacons:
    def test_beacons_roughly_100ms_apart(self):
        kernel, medium, ap, _ = build_cell()
        kernel.run_until(1_000_000)
        beacons = [
            tx for tx in medium.history if tx.frame.ftype is FrameType.BEACON
        ]
        assert len(beacons) >= 8
        gaps = [
            b2.start_us - b1.start_us for b1, b2 in zip(beacons, beacons[1:])
        ]
        assert all(90_000 < gap < 130_000 for gap in gaps)

    def test_beacons_at_lowest_rate(self):
        kernel, medium, _, _ = build_cell()
        kernel.run_until(500_000)
        beacons = [
            tx for tx in medium.history if tx.frame.ftype is FrameType.BEACON
        ]
        assert all(tx.rate is RATE_1 for tx in beacons)


class TestDataTransfer:
    def test_uplink_reaches_ap(self):
        kernel, _, ap, sta = build_cell()
        received = []
        ap.uplink_sink = lambda client, payload: received.append((client, payload))
        sta.send_payload(b"hello-world-payload")
        kernel.run_until(2_000_000)
        assert received and received[0] == (STA_MAC, b"hello-world-payload")

    def test_downlink_reaches_station(self):
        kernel, _, ap, sta = build_cell()
        received = []
        sta.packet_sink = received.append
        sta.when_associated(lambda: ap.send_downlink(STA_MAC, b"downlink-data"))
        kernel.run_until(2_000_000)
        assert received == [b"downlink-data"]

    def test_data_frames_are_acked(self):
        kernel, medium, ap, sta = build_cell()
        sta.send_payload(b"x" * 500)
        kernel.run_until(2_000_000)
        data = [
            tx for tx in medium.history
            if tx.frame.ftype is FrameType.DATA and tx.frame.addr2 == STA_MAC
            and tx.frame.to_ds
        ]
        acks = [
            tx for tx in medium.history
            if tx.frame.ftype is FrameType.ACK and tx.frame.addr1 == STA_MAC
        ]
        assert data and acks
        # The ACK follows the DATA after SIFS.
        first_data = data[0]
        following = [a for a in acks if a.start_us == first_data.end_us + 10]
        assert following

    def test_send_before_association_is_queued(self):
        kernel, _, ap, sta = build_cell()
        received = []
        ap.uplink_sink = lambda client, payload: received.append(payload)
        sta.send_payload(b"early")  # not associated yet at t=0
        kernel.run_until(2_000_000)
        assert received == [b"early"]

    def test_distant_station_retransmits(self):
        # ~95 m away on the same floor: marginal SNR, so a burst of data
        # frames must suffer at least one link-layer retransmission.
        kernel, medium, ap, sta = build_cell(
            sta_pos=(95.0, 9.0, 1.0), seed=3
        )
        kernel.run_until(2_000_000)
        if not sta.associated:
            pytest.skip("too lossy to associate at this seed/distance")
        for i in range(30):
            sta.send_payload(bytes([i]) * 1000)
        kernel.run_until(6_000_000)
        retries = [
            tx for tx in medium.history
            if tx.frame.retry and tx.frame.addr2 == STA_MAC
        ]
        assert retries  # at least one retransmission happened


class TestProtectionMode:
    def test_protection_off_without_11b(self):
        kernel, _, ap, _ = build_cell(sta_ofdm=True)
        kernel.run_until(2_000_000)
        assert not ap.protection_enabled

    def test_protection_on_when_11b_associates(self):
        kernel, _, ap, _ = build_cell(sta_ofdm=False)
        kernel.run_until(2_000_000)
        assert ap.protection_enabled

    def test_protection_expires_after_timeout(self):
        kernel, _, ap, sta = build_cell(
            sta_ofdm=False, protection_timeout_us=500_000
        )
        kernel.run_until(2_000_000)
        # The 11b client keeps transmitting nothing after association; after
        # the short timeout with no 11b frames, protection must drop.
        if ap.last_11b_seen_us is not None:
            last = ap.last_11b_seen_us
            kernel.run_until(last + 600_000)
            assert not ap.protection_enabled

    def test_cts_to_self_precedes_protected_data(self):
        kernel, medium, ap, sta = build_cell(sta_ofdm=False, seed=11)
        kernel.run_until(2_000_000)
        # Now a g-client joins the same AP and sends OFDM data under
        # protection learned from beacons.
        g_sta = Station(
            kernel, medium, STA2_MAC, (4.0, 8.0, 1.0), 15.0,
            np.random.default_rng(99), ap=ap, supports_ofdm=True,
            start_us=kernel.now_us + 1_000,
        )
        kernel.run_until(kernel.now_us + 2_000_000)
        assert g_sta.associated
        assert g_sta.protection_active
        g_sta.send_payload(b"z" * 800)
        kernel.run_until(kernel.now_us + 1_000_000)
        cts = [
            tx for tx in medium.history
            if tx.frame.ftype is FrameType.CTS and tx.frame.addr1 == STA2_MAC
        ]
        assert cts, "expected a CTS-to-self from the protected g client"
        assert all(tx.rate.is_cck for tx in cts)


class TestMediumBehaviour:
    def test_ground_truth_records_everything(self):
        kernel, medium, _, sta = build_cell()
        sta.send_payload(b"abc")
        kernel.run_until(2_000_000)
        assert medium.history == sorted(medium.history, key=lambda t: t.start_us)
        assert all(tx.duration_us > 0 for tx in medium.history)

    def test_carrier_sense_position_dependent(self):
        kernel, medium, ap, _ = build_cell()
        # Put a long transmission on the air directly.
        frame = make_data(STA_MAC, AP_MAC, AP_MAC, seq=1, body=b"q" * 1400)
        from repro.dot11.serialize import frame_to_bytes

        medium.transmit(
            frame, frame_to_bytes(frame), RATE_1, CHANNEL_1,
            position=(0.0, 9.0, 2.5), power_dbm=15.0, transmitter_id="t",
        )
        near_busy = medium.is_busy(CHANNEL_1, (5.0, 9.0, 2.5))
        far_busy = medium.is_busy(CHANNEL_1, (109.0, 17.0, 14.5))
        assert near_busy
        assert not far_busy

    def test_cross_channel_isolation(self):
        kernel, medium, _, _ = build_cell()
        frame = make_data(STA_MAC, AP_MAC, AP_MAC, seq=1, body=b"q" * 1400)
        from repro.dot11.serialize import frame_to_bytes

        medium.transmit(
            frame, frame_to_bytes(frame), RATE_1, CHANNEL_1,
            position=(0.0, 9.0, 2.5), power_dbm=15.0, transmitter_id="t",
        )
        assert not medium.is_busy(CHANNEL_6, (5.0, 9.0, 2.5))
