"""Unit tests for building geometry, placement, and scenario config."""

import numpy as np
import pytest

from repro.dot11.channels import ORTHOGONAL_CHANNELS
from repro.sim.building import (
    Building,
    assign_channels,
    pod_reduction_order,
)
from repro.sim.scenario import ScenarioConfig, WorkloadConfig
from repro.sim.workload import (
    FlowArchetype,
    FlowRequest,
    flow_counts_by_archetype,
    generate_flows,
)


class TestBuilding:
    def test_ap_count(self):
        aps = Building(floors=4).place_aps(per_floor=10)
        assert len(aps) == 40
        assert {p.floor for p in aps} == {0, 1, 2, 3}

    def test_aps_in_corridor(self):
        building = Building()
        assert all(
            p.y == building.corridor_y_m for p in building.place_aps(5)
        )

    def test_pod_count_paper_scale(self):
        pods = Building(floors=4).place_pods(39)
        assert len(pods) == 39

    def test_pods_within_building(self):
        building = Building()
        for pod in building.place_pods(39):
            assert 0 <= pod.x <= building.length_m
            assert 0 <= pod.y <= building.wing_width_m

    def test_clients_within_building(self):
        building = Building()
        rng = np.random.default_rng(1)
        for client in building.place_clients(100, rng):
            assert 0 <= client.x <= building.length_m
            assert 0 <= client.y <= building.wing_width_m

    def test_corner_clients_exist(self):
        building = Building()
        rng = np.random.default_rng(2)
        clients = building.place_clients(200, rng, corner_fraction=0.5)
        corner = [c for c in clients if c.x < 2.0 or c.x > building.length_m - 2.0]
        assert len(corner) > 30

    def test_wing_assignment(self):
        building = Building()
        assert building.wing_of(1.0) == 0
        assert building.wing_of(building.length_m - 1.0) == 1


class TestChannelAssignment:
    def test_round_robin_per_floor(self):
        building = Building(floors=2)
        aps = building.place_aps(per_floor=6)
        channels = assign_channels(aps)
        floor0 = [c.number for a, c in zip(aps, channels) if a.floor == 0]
        assert floor0 == [1, 6, 11, 1, 6, 11]

    def test_only_orthogonal_channels_used(self):
        channels = assign_channels(Building().place_aps(10))
        assert {c.number for c in channels} <= set(ORTHOGONAL_CHANNELS)


class TestPodReduction:
    def test_order_is_permutation(self):
        pods = Building().place_pods(20)
        order = pod_reduction_order(pods)
        assert sorted(order) == list(range(20))

    def test_first_removed_is_most_redundant(self):
        # Three pods: two nearly co-located, one far away.  One of the pair
        # must be removed first.
        from repro.sim.building import Placement

        pods = [
            Placement((0.0, 0.0, 2.5), 0, 0),
            Placement((0.5, 0.0, 2.5), 0, 0),
            Placement((50.0, 0.0, 2.5), 0, 0),
        ]
        order = pod_reduction_order(pods)
        assert order[0] in (0, 1)
        assert order[-1] == 2 or order[-2] == 2


class TestScenarioConfig:
    def test_building_scale_matches_paper(self):
        config = ScenarioConfig.building()
        assert config.n_aps == 40  # nominal grid before wing exclusion
        assert config.uncovered_wing
        # The deployed fleet (after removing the uncovered wing) lands on
        # the paper's ~39 pods / ~156 radios.
        from repro.sim.building import Building

        pods = Building(floors=config.floors).place_pods(
            config.n_pods, exclude_wings=[(0, 0)]
        )
        assert 37 <= len(pods) <= 41

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioConfig(duration_us=0)
        with pytest.raises(ValueError):
            ScenarioConfig(fraction_11b_clients=1.5)
        with pytest.raises(ValueError):
            ScenarioConfig(n_pods=0)

    def test_overrides(self):
        config = ScenarioConfig.tiny(seed=3, n_clients=9)
        assert config.n_clients == 9 and config.seed == 3

    def test_diurnal_curve_peaks_midday(self):
        config = ScenarioConfig.building(duration_us=24_000_000)
        noon = config.diurnal_activity(int(13.5 / 24 * config.duration_us))
        night = config.diurnal_activity(int(3.0 / 24 * config.duration_us))
        assert noon > 0.9
        assert night < 0.3

    def test_non_diurnal_flat(self):
        config = ScenarioConfig.small()
        assert config.diurnal_activity(0) == 1.0
        assert config.diurnal_activity(config.duration_us // 2) == 1.0

    def test_workload_weight_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(web_weight=0, ssh_weight=0, scp_weight=0).archetype_weights()


class TestWorkloadGeneration:
    def test_flows_sorted_and_in_range(self):
        config = ScenarioConfig.small(seed=5)
        flows = generate_flows(config, np.random.default_rng(5))
        assert flows == sorted(flows, key=lambda f: f.start_us)
        assert all(0 <= f.start_us < config.duration_us for f in flows)

    def test_flow_volume_scales_with_clients(self):
        rng = np.random.default_rng(7)
        few = generate_flows(ScenarioConfig.small(n_clients=4), rng)
        rng = np.random.default_rng(7)
        many = generate_flows(ScenarioConfig.small(n_clients=40), rng)
        assert len(many) > len(few)

    def test_all_archetypes_appear(self):
        config = ScenarioConfig.small(
            seed=11, n_clients=30, duration_us=10_000_000
        )
        flows = generate_flows(config, np.random.default_rng(11))
        counts = flow_counts_by_archetype(flows)
        assert all(counts[a] > 0 for a in FlowArchetype)

    def test_ssh_uses_small_segments(self):
        config = ScenarioConfig.small(seed=13, n_clients=30)
        flows = generate_flows(config, np.random.default_rng(13))
        ssh = [f for f in flows if f.archetype is FlowArchetype.SSH]
        assert ssh and all(f.segment_bytes < 200 for f in ssh)

    def test_diurnal_run_thins_overnight(self):
        config = ScenarioConfig.building(
            seed=17, n_clients=40, duration_us=20_000_000
        )
        flows = generate_flows(config, np.random.default_rng(17))
        day = [
            f
            for f in flows
            if 0.4 < f.start_us / config.duration_us < 0.7
        ]
        night = [f for f in flows if f.start_us / config.duration_us < 0.2]
        assert len(day) > len(night)

    def test_flow_request_validation(self):
        with pytest.raises(ValueError):
            FlowRequest(0, 0, FlowArchetype.WEB, True, 0, 1460)
        with pytest.raises(ValueError):
            FlowRequest(0, 0, FlowArchetype.WEB, True, 100, 0)

    def test_deterministic_given_seed(self):
        config = ScenarioConfig.small(seed=23)
        a = generate_flows(config, np.random.default_rng(23))
        b = generate_flows(config, np.random.default_rng(23))
        assert a == b
