"""Tests for frame unification: synthetic cases plus simulator integration."""

import pytest

from repro.core.sync.bootstrap import BootstrapResult, bootstrap_synchronization
from repro.core.unify.jframe import JFrameKind
from repro.core.unify.unifier import Unifier
from repro.dot11.address import MacAddress
from repro.dot11.frame import make_data
from repro.dot11.serialize import frame_to_bytes
from repro.jtrace.io import RadioTrace
from repro.jtrace.records import RecordKind, TraceRecord

SRC = MacAddress.parse("00:0c:0c:00:00:01")
SRC2 = MacAddress.parse("00:0c:0c:00:00:02")
DST = MacAddress.parse("00:0a:0a:00:00:01")


def record_for(frame, radio_id, ts, kind=RecordKind.VALID, channel=1,
               txid=0, corrupt_bytes=None):
    raw = frame_to_bytes(frame)
    if kind is RecordKind.PHY_ERROR:
        snap, frame_len, fcs = b"", 0, 0
    elif corrupt_bytes is not None:
        snap, frame_len = corrupt_bytes[:200], len(corrupt_bytes)
        fcs = int.from_bytes(corrupt_bytes[-4:], "little")
    else:
        snap, frame_len = raw[:200], len(raw)
        fcs = int.from_bytes(raw[-4:], "little")
    return TraceRecord(
        radio_id=radio_id, timestamp_us=ts, kind=kind, channel=channel,
        rate_mbps=11.0, rssi_dbm=-60.0, frame_len=frame_len, fcs=fcs,
        snap=snap, duration_us=100, truth_txid=txid,
    )


def perfect_bootstrap(radio_ids):
    return BootstrapResult(offsets_us={r: 0.0 for r in radio_ids})


def data_frame(seq=1, body=b"payload", retry=False, src=SRC):
    return make_data(src, DST, DST, seq=seq, body=body, retry=retry)


class TestBasicUnification:
    def test_duplicates_merge_into_one_jframe(self):
        frame = data_frame()
        traces = [
            RadioTrace(r, 1, [record_for(frame, r, 1000 + r, txid=1)])
            for r in range(4)
        ]
        result = Unifier().unify(traces, perfect_bootstrap(range(4)))
        assert len(result.jframes) == 1
        jf = result.jframes[0]
        assert jf.n_instances == 4
        assert jf.kind is JFrameKind.VALID
        assert jf.frame is not None and jf.frame.seq == 1
        assert jf.truth_txid() == 1

    def test_distinct_frames_stay_separate(self):
        a, b = data_frame(seq=1), data_frame(seq=2)
        traces = [
            RadioTrace(0, 1, [record_for(a, 0, 1000, txid=1),
                              record_for(b, 0, 1500, txid=2)]),
            RadioTrace(1, 1, [record_for(a, 1, 1002, txid=1),
                              record_for(b, 1, 1503, txid=2)]),
        ]
        result = Unifier().unify(traces, perfect_bootstrap(range(2)))
        assert len(result.jframes) == 2
        assert {jf.truth_txid() for jf in result.jframes} == {1, 2}

    def test_simultaneous_distinct_content_not_merged(self):
        """Distinct frames transmitted at the same instant must not merge —
        "it is still crucial to compare frame contents" (Section 4.2)."""
        a = data_frame(seq=5, src=SRC)
        b = data_frame(seq=9, src=SRC2)
        traces = [
            RadioTrace(0, 1, [record_for(a, 0, 1000, txid=1)]),
            RadioTrace(1, 1, [record_for(b, 1, 1000, txid=2)]),
        ]
        result = Unifier().unify(traces, perfect_bootstrap(range(2)))
        assert len(result.jframes) == 2

    def test_median_timestamp(self):
        frame = data_frame()
        traces = [
            RadioTrace(0, 1, [record_for(frame, 0, 1000)]),
            RadioTrace(1, 1, [record_for(frame, 1, 1004)]),
            RadioTrace(2, 1, [record_for(frame, 2, 1030)]),
        ]
        result = Unifier().unify(traces, perfect_bootstrap(range(3)))
        assert result.jframes[0].timestamp_us == 1004
        assert result.jframes[0].dispersion_us == pytest.approx(30.0)

    def test_bootstrap_offsets_applied(self):
        frame = data_frame()
        # Radio 1's clock reads 5000 ahead; bootstrap knows it.
        traces = [
            RadioTrace(0, 1, [record_for(frame, 0, 1000, txid=1)]),
            RadioTrace(1, 1, [record_for(frame, 1, 6003, txid=1)]),
        ]
        bootstrap = BootstrapResult(offsets_us={0: 0.0, 1: -5000.0})
        result = Unifier().unify(traces, bootstrap)
        assert len(result.jframes) == 1
        assert result.jframes[0].dispersion_us < 10

    def test_same_radio_never_twice_in_jframe(self):
        # Two identical retries heard by one radio stay two jframes.
        frame = data_frame(retry=True)
        trace = RadioTrace(0, 1, [
            record_for(frame, 0, 1000, txid=1),
            record_for(frame, 0, 2000, txid=2),
        ])
        result = Unifier().unify([trace], perfect_bootstrap([0]))
        assert len(result.jframes) == 2

    def test_unsynchronized_radio_skipped(self):
        frame = data_frame()
        traces = [
            RadioTrace(0, 1, [record_for(frame, 0, 1000)]),
            RadioTrace(1, 1, [record_for(frame, 1, 1003)]),
        ]
        bootstrap = BootstrapResult(offsets_us={0: 0.0}, unreachable=[1])
        result = Unifier().unify(traces, bootstrap)
        assert result.stats.records_skipped_unsynchronized == 1
        assert result.jframes[0].n_instances == 1

    def test_output_sorted_by_timestamp(self):
        frames = [data_frame(seq=i) for i in range(1, 20)]
        records = [
            record_for(f, 0, 1000 * i, txid=i)
            for i, f in enumerate(frames, start=1)
        ]
        result = Unifier().unify(
            [RadioTrace(0, 1, records)], perfect_bootstrap([0])
        )
        stamps = [jf.timestamp_us for jf in result.jframes]
        assert stamps == sorted(stamps)


class TestCorruptAndErrorHandling:
    def test_corrupt_attaches_by_transmitter(self):
        frame = data_frame(body=b"q" * 64)
        raw = bytearray(frame_to_bytes(frame))
        raw[-6] ^= 0xFF  # tail damage: header (and addr2) survive
        traces = [
            RadioTrace(0, 1, [record_for(frame, 0, 1000, txid=1)]),
            RadioTrace(1, 1, [record_for(
                frame, 1, 1005, kind=RecordKind.CORRUPT,
                corrupt_bytes=bytes(raw), txid=1,
            )]),
        ]
        result = Unifier().unify(traces, perfect_bootstrap(range(2)))
        assert len(result.jframes) == 1
        jf = result.jframes[0]
        assert jf.kind is JFrameKind.VALID
        assert jf.n_instances == 2

    def test_phy_error_attaches_by_time(self):
        frame = data_frame()
        traces = [
            RadioTrace(0, 1, [record_for(frame, 0, 1000, txid=1)]),
            RadioTrace(1, 1, [record_for(
                frame, 1, 1008, kind=RecordKind.PHY_ERROR, txid=1,
            )]),
        ]
        result = Unifier().unify(traces, perfect_bootstrap(range(2)))
        assert len(result.jframes) == 1
        assert result.jframes[0].kind is JFrameKind.VALID

    def test_valid_adopts_earlier_corrupt_group(self):
        frame = data_frame(body=b"w" * 64)
        raw = bytearray(frame_to_bytes(frame))
        raw[-6] ^= 0xFF
        traces = [
            RadioTrace(0, 1, [record_for(
                frame, 0, 1000, kind=RecordKind.CORRUPT,
                corrupt_bytes=bytes(raw), txid=1,
            )]),
            RadioTrace(1, 1, [record_for(frame, 1, 1006, txid=1)]),
        ]
        result = Unifier().unify(traces, perfect_bootstrap(range(2)))
        assert len(result.jframes) == 1
        assert result.jframes[0].kind is JFrameKind.VALID

    def test_lone_phy_error_becomes_error_jframe(self):
        frame = data_frame()
        trace = RadioTrace(0, 1, [
            record_for(frame, 0, 1000, kind=RecordKind.PHY_ERROR),
        ])
        result = Unifier().unify([trace], perfect_bootstrap([0]))
        assert result.jframes[0].kind is JFrameKind.PHY_ERROR

    def test_cross_channel_never_grouped(self):
        frame = data_frame()
        traces = [
            RadioTrace(0, 1, [record_for(frame, 0, 1000, channel=1)]),
            RadioTrace(1, 6, [record_for(frame, 1, 1000, channel=6)]),
        ]
        result = Unifier().unify(traces, perfect_bootstrap(range(2)))
        # Same content on different channels: physically distinct events.
        assert len(result.jframes) == 2


class TestResynchronization:
    def test_skewed_clock_tracked_across_trace(self):
        """A radio with +80 ppm skew stays unified with a perfect radio
        thanks to continual resynchronization."""
        frames = [data_frame(seq=i % 4096, body=bytes([i % 251]) * 8)
                  for i in range(200)]
        good = RadioTrace(0, 1, [
            record_for(f, 0, 5_000 * (i + 1), txid=i + 1)
            for i, f in enumerate(frames)
        ])
        skewed_records = []
        for i, f in enumerate(frames):
            true_ts = 5_000 * (i + 1)
            local = int(round(true_ts * (1 + 80e-6)))
            skewed_records.append(record_for(f, 1, local, txid=i + 1))
        skewed = RadioTrace(1, 1, skewed_records)
        result = Unifier().unify(
            [good, skewed], perfect_bootstrap(range(2))
        )
        assert len(result.jframes) == 200
        assert all(jf.n_instances == 2 for jf in result.jframes)
        # Dispersion stays bounded: the tracker absorbs the skew.
        late = result.jframes[150:]
        assert max(jf.dispersion_us for jf in late) < 20
        # Universal time is the fleet's consensus clock, not wall clock
        # (the paper: Jigsaw's universal clock "may diverge over time with
        # respect to a true time standard").  Only the *relative* skew
        # between the two radios is observable, and it must be ~80 ppm.
        relative = result.tracks[1].skew_ppm - result.tracks[0].skew_ppm
        assert relative == pytest.approx(-80, abs=20)

    def test_without_resync_skew_breaks_unification(self):
        """Ablation: huge resync threshold (never resync) plus a small
        window makes the skewed radio's frames split off — the failure mode
        Section 4.2 motivates resynchronization with."""
        frames = [data_frame(seq=i % 4096, body=bytes([i % 251]) * 8)
                  for i in range(200)]
        good = RadioTrace(0, 1, [
            record_for(f, 0, 5_000 * (i + 1), txid=i + 1)
            for i, f in enumerate(frames)
        ])
        skewed = RadioTrace(1, 1, [
            record_for(f, 1, int(round(5_000 * (i + 1) * (1 + 80e-6))),
                       txid=i + 1)
            for i, f in enumerate(frames)
        ])
        result = Unifier(
            search_window_us=60,
            resync_threshold_us=1e12,
            compensate_skew=False,
        ).unify([good, skewed], perfect_bootstrap(range(2)))
        split = sum(1 for jf in result.jframes if jf.n_instances == 1)
        assert split > 90  # most frames no longer unify

    def test_resync_stat_counted(self):
        frames = [data_frame(seq=i, body=bytes([i]) * 4) for i in range(50)]
        a = RadioTrace(0, 1, [
            record_for(f, 0, 20_000 * (i + 1), txid=i) for i, f in enumerate(frames)
        ])
        b = RadioTrace(1, 1, [
            record_for(f, 1, 20_000 * (i + 1) + 15, txid=i)
            for i, f in enumerate(frames)
        ])
        result = Unifier(resync_threshold_us=10).unify(
            [a, b], perfect_bootstrap(range(2))
        )
        assert result.stats.resyncs > 0


@pytest.fixture(scope="module")
def unified_small():
    from repro.sim import ScenarioConfig, run_scenario

    artifacts = run_scenario(ScenarioConfig.small(seed=42))
    bootstrap = bootstrap_synchronization(
        artifacts.radio_traces, clock_groups=artifacts.clock_groups()
    )
    result = Unifier().unify(artifacts.radio_traces, bootstrap)
    return artifacts, bootstrap, result


class TestSimulatorIntegration:
    def test_bootstrap_covers_fleet(self, unified_small):
        _, bootstrap, _ = unified_small
        assert bootstrap.fully_synchronized

    def test_unification_against_oracle(self, unified_small):
        """Each multi-radio-observed transmission should unify into exactly
        one jframe: compare against the simulator's txid oracle."""
        artifacts, _, result = unified_small
        from collections import defaultdict

        by_txid = defaultdict(list)
        for jf in result.jframes:
            if jf.kind is JFrameKind.VALID and jf.truth_txid():
                by_txid[jf.truth_txid()].append(jf)
        split = sum(1 for frames in by_txid.values() if len(frames) > 1)
        assert split / max(1, len(by_txid)) < 0.02

    def test_dispersion_mostly_tight(self, unified_small):
        """Figure 4's qualitative shape: the large majority of jframes see
        worst-case inter-radio offsets within tens of microseconds."""
        _, _, result = unified_small
        dispersions = sorted(result.dispersions_us())
        assert dispersions
        p90 = dispersions[int(0.9 * len(dispersions)) - 1]
        assert p90 < 40.0

    def test_events_per_jframe_above_one(self, unified_small):
        _, _, result = unified_small
        assert result.stats.events_per_jframe > 1.5

    def test_no_records_lost(self, unified_small):
        artifacts, _, result = unified_small
        total_records = sum(len(t) for t in artifacts.radio_traces)
        assert (
            result.stats.instances_unified
            + result.stats.records_skipped_unsynchronized
            == total_records
        )
