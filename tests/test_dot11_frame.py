"""Unit tests for the frame model and its serialization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dot11.address import BROADCAST, MacAddress
from repro.dot11.fcs import append_fcs, check_fcs, fcs32, strip_fcs
from repro.dot11.frame import (
    Frame,
    FrameType,
    make_ack,
    make_assoc_request,
    make_beacon,
    make_cts,
    make_cts_to_self,
    make_data,
    make_probe_request,
    make_probe_response,
    make_rts,
)
from repro.dot11.serialize import (
    FrameParseError,
    frame_from_bytes,
    frame_to_bytes,
    transmitter_from_corrupt_bytes,
)

SRC = MacAddress.parse("00:0c:0c:00:00:01")
DST = MacAddress.parse("00:0a:0a:00:00:01")
BSS = MacAddress.parse("00:0a:0a:00:00:01")


def data_frame(seq=5, body=b"payload", retry=False):
    return make_data(SRC, DST, BSS, seq=seq, body=body, retry=retry)


class TestFcs:
    def test_round_trip(self):
        framed = append_fcs(b"hello")
        assert check_fcs(framed)
        assert strip_fcs(framed) == b"hello"

    def test_detects_corruption(self):
        framed = bytearray(append_fcs(b"hello"))
        framed[0] ^= 0xFF
        assert not check_fcs(bytes(framed))

    def test_short_input(self):
        assert not check_fcs(b"ab")
        with pytest.raises(ValueError):
            strip_fcs(b"ab")

    @given(st.binary(max_size=256))
    def test_fcs_deterministic(self, data):
        assert fcs32(data) == fcs32(data)
        assert check_fcs(append_fcs(data))


class TestFrameModel:
    def test_data_requires_sequence(self):
        with pytest.raises(ValueError):
            Frame(ftype=FrameType.DATA, addr1=DST, addr2=SRC)

    def test_ack_rejects_sequence(self):
        with pytest.raises(ValueError):
            Frame(ftype=FrameType.ACK, addr1=DST, seq=1)

    def test_sequence_range(self):
        with pytest.raises(ValueError):
            data_frame(seq=4096)

    def test_duration_range(self):
        with pytest.raises(ValueError):
            Frame(ftype=FrameType.ACK, addr1=DST, duration_us=1 << 16)

    def test_data_expects_ack(self):
        assert data_frame().expects_ack

    def test_broadcast_data_expects_no_ack(self):
        frame = make_data(SRC, BROADCAST, BSS, seq=1, body=b"x")
        assert not frame.expects_ack
        assert frame.is_broadcast

    def test_ack_frame_has_no_transmitter(self):
        assert make_ack(SRC).transmitter is None

    def test_cts_to_self_names_sender_in_ra(self):
        cts = make_cts_to_self(SRC, duration_us=500)
        assert cts.addr1 == SRC
        assert cts.transmitter is None  # anonymous at the frame level

    def test_as_retry_sets_bit_only(self):
        frame = data_frame()
        retry = frame.as_retry()
        assert retry.retry and not frame.retry
        assert retry.seq == frame.seq and retry.body == frame.body

    def test_size_accounts_for_body(self):
        assert data_frame(body=b"x" * 100).size_bytes == 128
        assert make_ack(SRC).size_bytes == 14
        assert make_cts(SRC, 100).size_bytes == 14
        assert make_rts(SRC, DST, 100).size_bytes == 20

    def test_frame_types_classification(self):
        assert FrameType.ACK.is_control
        assert FrameType.BEACON.is_management
        assert FrameType.DATA.is_data
        assert not FrameType.ACK.carries_sequence
        assert FrameType.BEACON.carries_sequence

    def test_beacon_is_broadcast_from_ap(self):
        beacon = make_beacon(DST, seq=9)
        assert beacon.is_broadcast
        assert beacon.transmitter == DST
        assert beacon.bssid == DST

    def test_probe_request_broadcast(self):
        probe = make_probe_request(SRC, seq=0)
        assert probe.is_broadcast

    def test_probe_response_unicast_to_client(self):
        resp = make_probe_response(DST, SRC, seq=3)
        assert resp.receiver == SRC
        assert resp.expects_ack

    def test_assoc_request_encodes_capability(self):
        ofdm = make_assoc_request(SRC, DST, seq=1, supports_ofdm=True)
        cck = make_assoc_request(SRC, DST, seq=2, supports_ofdm=False)
        assert ofdm.body != cck.body

    def test_str_is_informative(self):
        text = str(data_frame(retry=True))
        assert "data" in text and "retry" in text and "seq=5" in text


# A hypothesis strategy over representative frames.
_addresses = st.integers(min_value=1, max_value=0xFFFF_FFFF_FFFE).map(MacAddress)
_frames = st.one_of(
    st.builds(
        make_data,
        src=_addresses,
        dst=_addresses,
        bssid=_addresses,
        seq=st.integers(min_value=0, max_value=4095),
        body=st.binary(max_size=300),
        duration_us=st.integers(min_value=0, max_value=0x7FFF),
        retry=st.booleans(),
    ),
    st.builds(make_ack, receiver=_addresses),
    st.builds(
        make_cts_to_self,
        sender=_addresses,
        duration_us=st.integers(min_value=0, max_value=0x7FFF),
    ),
    st.builds(
        make_beacon,
        ap=_addresses,
        seq=st.integers(min_value=0, max_value=4095),
    ),
)


class TestSerialization:
    @given(frame=_frames)
    def test_round_trip(self, frame):
        assert frame_from_bytes(frame_to_bytes(frame)) == frame

    @given(frame=_frames)
    def test_serialization_deterministic(self, frame):
        assert frame_to_bytes(frame) == frame_to_bytes(frame)

    def test_fcs_verified_by_default(self):
        raw = bytearray(frame_to_bytes(data_frame()))
        raw[-1] ^= 0x01
        with pytest.raises(FrameParseError):
            frame_from_bytes(bytes(raw))

    def test_corrupt_body_parse_skippable(self):
        raw = bytearray(frame_to_bytes(data_frame(body=b"z" * 64)))
        raw[30] ^= 0xFF  # damage the body, not the header
        frame = frame_from_bytes(bytes(raw), verify_fcs=False)
        assert frame.transmitter == SRC  # header fields survive

    def test_truncated_raises(self):
        raw = frame_to_bytes(data_frame())
        with pytest.raises(FrameParseError):
            frame_from_bytes(raw[:8])

    def test_unknown_type_code_raises(self):
        raw = bytearray(frame_to_bytes(make_ack(SRC)))
        raw[0] = 0xFE
        from repro.dot11.fcs import append_fcs as _afcs

        rebuilt = _afcs(bytes(raw[:-4]))
        with pytest.raises(FrameParseError):
            frame_from_bytes(rebuilt)

    def test_transmitter_recovery_from_corrupt_tail(self):
        raw = bytearray(frame_to_bytes(data_frame(body=b"q" * 128)))
        raw[-10] ^= 0xFF  # FCS now fails, tail corrupt
        assert transmitter_from_corrupt_bytes(bytes(raw)) == SRC

    def test_transmitter_recovery_fails_for_ack(self):
        raw = frame_to_bytes(make_ack(SRC))
        assert transmitter_from_corrupt_bytes(raw) is None

    def test_transmitter_recovery_fails_when_too_short(self):
        assert transmitter_from_corrupt_bytes(b"\x00" * 4) is None

    @given(frame=_frames)
    def test_size_matches_model(self, frame):
        # Serialized length tracks the model's size accounting loosely:
        # both must grow together with the body.
        raw = frame_to_bytes(frame)
        assert len(raw) >= 14
