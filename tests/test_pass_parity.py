"""Parity suite: streaming analysis passes == batch report analyses.

Every pass-based analysis must produce results identical to its batch
``JigsawReport`` counterpart — on the small and building scenarios,
with ``materialize=False``, and under ``ShardedUnifier`` (serial and
process-pool) — plus the satellites: in-order exchange emission and the
experiment run-cache config fingerprint.
"""

import pytest

from repro.core.analysis import (
    ActivityPass,
    BroadcastAirtimePass,
    DispersionPass,
    InterferencePass,
    ProtectionPass,
    SummaryPass,
    TcpLossPass,
    WiredCoveragePass,
    activity_timeline,
    analyze_protection,
    analyze_tcp_loss,
    broadcast_airtime_share,
    dispersion_cdf,
    estimate_interference,
    summarize,
    wired_coverage,
)
from repro.core.passes import run_passes
from repro.core.pipeline import JigsawPipeline
from repro.core.unify import ShardedUnifier
from repro.sim import ScenarioConfig, run_scenario

MIN_PACKETS = 20


def make_passes(config, wired_trace):
    duration = config.duration_us
    bin_us = duration // 10
    return {
        "activity": ActivityPass(duration, bin_us=bin_us),
        "broadcast_airtime": BroadcastAirtimePass(duration),
        "dispersion": DispersionPass(),
        "protection": ProtectionPass(
            duration, bin_us=bin_us, practical_timeout_us=duration // 8
        ),
        "tcp_loss": TcpLossPass(),
        "summary": SummaryPass(duration),
        "interference": InterferencePass(min_packets=MIN_PACKETS),
        "wired_coverage": WiredCoveragePass(wired_trace),
    }


def batch_results(report, artifacts, config):
    """Every analysis through its classic batch entry point."""
    duration = config.duration_us
    bin_us = duration // 10
    return {
        "activity": activity_timeline(report, duration, bin_us=bin_us),
        "broadcast_airtime": broadcast_airtime_share(report, duration),
        "dispersion": dispersion_cdf(report.unification),
        "protection": analyze_protection(
            report, duration, bin_us=bin_us, practical_timeout_us=duration // 8
        ),
        "tcp_loss": analyze_tcp_loss(report),
        "summary": summarize(report, artifacts.radio_traces, duration),
        "interference": estimate_interference(report, min_packets=MIN_PACKETS),
        "wired_coverage": wired_coverage(artifacts.wired_trace, report.jframes),
    }


def tcploss_projection(result):
    return [
        (
            str(row.flow.key),
            row.data_segments,
            row.wireless_losses,
            row.wired_losses,
            row.unknown_losses,
        )
        for row in result.flows
    ]


def interference_projection(result):
    return result.truncated_pairs, [
        (
            str(p.sender),
            str(p.receiver),
            p.n,
            p.n0,
            p.nl0,
            p.nx,
            p.nlx,
            p.sender_is_ap,
        )
        for p in result.pairs
    ]


def coverage_projection(result):
    return [
        (str(s.station), s.is_ap, s.wired_packets, s.observed_packets)
        for s in result.stations
    ]


def assert_all_equal(streamed, batch):
    """Compare every analysis's streaming result against its batch twin."""
    assert streamed["activity"] == batch["activity"]
    assert streamed["broadcast_airtime"] == batch["broadcast_airtime"]
    assert (
        streamed["dispersion"].samples_us == batch["dispersion"].samples_us
    )
    assert streamed["protection"] == batch["protection"]
    assert tcploss_projection(streamed["tcp_loss"]) == tcploss_projection(
        batch["tcp_loss"]
    )
    assert streamed["summary"] == batch["summary"]
    assert interference_projection(
        streamed["interference"]
    ) == interference_projection(batch["interference"])
    assert coverage_projection(
        streamed["wired_coverage"]
    ) == coverage_projection(batch["wired_coverage"])


@pytest.fixture(scope="module")
def small_setup():
    config = ScenarioConfig.small(
        seed=99, fraction_11b_clients=0.3, client_rescan_interval_us=800_000
    )
    artifacts = run_scenario(config)
    report = JigsawPipeline().run(
        artifacts.radio_traces,
        clock_groups=artifacts.clock_groups(),
        passes=list(make_passes(config, artifacts.wired_trace).values()),
    )
    return config, artifacts, report, batch_results(report, artifacts, config)


class TestStreamingParitySmall:
    def test_inline_passes_match_batch(self, small_setup):
        """Passes driven inside the one-pass loop == batch over the same
        (materialized) report."""
        _, _, report, batch = small_setup
        assert_all_equal(report.passes, batch)
        # Sanity: the scenario exercises every analysis non-trivially.
        assert report.passes["interference"].n_pairs > 0
        assert report.passes["tcp_loss"].n_flows > 0
        assert report.passes["protection"].total_overprotective_aps() >= 0
        assert report.passes["dispersion"].n > 100

    def test_replay_matches_batch(self, small_setup):
        """run_passes over a materialized report == batch entry points."""
        config, artifacts, report, batch = small_setup
        replayed = run_passes(
            report,
            list(make_passes(config, artifacts.wired_trace).values()),
            traces=artifacts.radio_traces,
        )
        assert_all_equal(replayed, batch)

    def test_materialize_false_matches_batch(self, small_setup):
        """A bounded-memory run (no report lists) still matches batch."""
        config, artifacts, _, batch = small_setup
        report = JigsawPipeline().run_streaming(
            artifacts.radio_traces,
            list(make_passes(config, artifacts.wired_trace).values()),
            clock_groups=artifacts.clock_groups(),
        )
        assert not report.materialized
        assert report.jframes == []
        assert report.attempts == []
        assert report.exchanges == []
        assert len(report.flows) > 0  # flows always survive
        assert_all_equal(report.passes, batch)

    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_sharded_unifier_forwards_pass_feeds(self, small_setup, max_workers):
        """Serial and process-pool sharded merges drive passes identically."""
        config, artifacts, _, batch = small_setup
        pipeline = JigsawPipeline(
            unifier=ShardedUnifier(max_workers=max_workers)
        )
        report = pipeline.run_streaming(
            artifacts.radio_traces,
            list(make_passes(config, artifacts.wired_trace).values()),
            clock_groups=artifacts.clock_groups(),
        )
        assert_all_equal(report.passes, batch)

    def test_replay_refuses_unmaterialized_report(self, small_setup):
        config, artifacts, _, _ = small_setup
        report = JigsawPipeline().run_streaming(
            artifacts.radio_traces,
            [],
            clock_groups=artifacts.clock_groups(),
        )
        with pytest.raises(ValueError, match="materialize=False"):
            activity_timeline(report, config.duration_us)

    def test_duplicate_pass_names_rejected(self, small_setup):
        config, artifacts, _, _ = small_setup
        with pytest.raises(ValueError, match="duplicate pass name"):
            JigsawPipeline().run(
                artifacts.radio_traces[:2],
                passes=[DispersionPass(), DispersionPass()],
            )

    def test_pass_result_accessor(self, small_setup):
        _, _, report, _ = small_setup
        assert report.pass_result("dispersion") is report.passes["dispersion"]
        with pytest.raises(KeyError, match="no pass named"):
            report.pass_result("nope")


class TestExchangeOrdering:
    def test_feed_emits_in_start_order(self, small_setup):
        """The reorder buffer delivers exchanges sorted by start_us, equal
        to the stable start-time sort of the closure sequence."""
        from repro.core.link.attempt import AttemptAssembler
        from repro.core.link.exchange import ExchangeAssembler

        _, _, report, _ = small_setup
        attempts = AttemptAssembler().assemble(report.jframes)
        assembler = ExchangeAssembler()
        streamed = []
        for attempt in attempts:
            streamed.extend(assembler.feed(attempt))
        streamed.extend(assembler.finish())
        starts = [e.start_us for e in streamed]
        assert starts == sorted(starts)
        assert len(streamed) == assembler.stats.exchanges

    def test_pipeline_exchanges_sorted_without_barrier(self, small_setup):
        _, _, report, _ = small_setup
        starts = [e.start_us for e in report.exchanges]
        assert starts == sorted(starts)

    def test_silent_sender_does_not_stall_emission(self, small_setup):
        """An abandoned open exchange (sender never transmits again) must
        not pin the reorder buffer: once the feed watermark passes it by
        horizon + slack it is stale-closed and emission resumes."""
        from repro.core.link.attempt import AttemptAssembler
        from repro.core.link.exchange import (
            EXCHANGE_REORDER_SLACK_US,
            ExchangeAssembler,
        )

        _, _, report, _ = small_setup
        attempts = AttemptAssembler().assemble(report.jframes)
        # Find a sender with an early unicast data attempt, then feed only
        # that one attempt followed by every *other* sender's attempts.
        lead = next(
            a for a in attempts if a.has_data and not a.is_broadcast
        )
        rest = [a for a in attempts if a.transmitter != lead.transmitter]
        assembler = ExchangeAssembler()
        emitted = list(assembler.feed(lead))
        horizon_span = (
            lead.start_us
            + assembler.horizon_us
            + EXCHANGE_REORDER_SLACK_US
        )
        # Emission lag is bounded by a few horizons (stale sweep cadence +
        # reorder slack), so give the feed that much headroom past the
        # point the lead exchange goes stale.
        for attempt in rest:
            emitted.extend(assembler.feed(attempt))
            if attempt.start_us > (
                horizon_span
                + EXCHANGE_REORDER_SLACK_US
                + assembler.horizon_us
            ):
                break
        # The silent sender's exchange was stale-closed and emitted — the
        # buffer did not stall behind it.
        assert any(
            e.transmitter == lead.transmitter for e in emitted
        ), "abandoned open exchange stalled the reorder buffer"


class TestRunCacheFingerprint:
    def test_config_overrides_get_distinct_cache_entries(self):
        from repro.experiments import common

        common.clear_cache()
        try:
            base = common.get_run(
                "parity-cache", lambda: ScenarioConfig.tiny(seed=3), seed=3
            )
            override = common.get_run(
                "parity-cache",
                lambda: ScenarioConfig.tiny(seed=3, duration_us=700_000),
                seed=3,
            )
            again = common.get_run(
                "parity-cache", lambda: ScenarioConfig.tiny(seed=3), seed=3
            )
        finally:
            common.clear_cache()
        assert base is not override
        assert override.config.duration_us == 700_000
        assert again is base  # identical config still hits the cache


#: Reference values computed by the PRE-REWRITE batch implementations
#: (git HEAD before the pass API, commit fdd8ab5) on the exact scenario
#: `small_setup` builds.  The pass rewrites must reproduce them bit for
#: bit — this pins the old semantics independently of the wrappers,
#: which now share code with the passes.
PRE_REWRITE_GOLDEN = {
    "jframes": 4904,
    "events_per_jframe": 6.168433931484502,
    "unique_clients": 12,
    "unique_aps": 8,
    "attempts": 2187,
    "exchanges": 2072,
    "tcp_flows": 12,
    "handshakes": 12,
    "dispersion_n": 4861,
    "dispersion_sum": 19853.209071661142,
    "active_clients_series": [2, 10, 7, 5, 9, 3, 9, 7, 3, 10],
    "active_aps_series": [0, 3, 3, 2, 2, 3, 2, 3, 1, 1],
    "data_bytes_total": 130410,
    "beacon_frames_total": 236,
    "airtime": {1: 0.054248, 6: 0.027653333333333332,
                11: 0.028797333333333335},
    "protecting_series": [0, 2, 2, 1, 1, 2, 1, 2, 1, 0],
    "overprotective_series": [0, 0, 0, 1, 1, 2, 1, 2, 1, 0],
    "affected_series": [0, 0, 0, 1, 1, 2, 2, 3, 1, 0],
    "b_clients": 4,
    "g_clients": 8,
    "interference_truncated": 0,
    "interference_pairs": [
        ("02:0a:0a:00:00:04", "02:0c:0c:00:00:06", 30, 24, 0, 6, 0, True),
        ("02:0a:0a:00:00:05", "02:0c:0c:00:00:05", 371, 356, 0, 15, 2, True),
        ("02:0a:0a:00:00:07", "02:0c:0c:00:00:02", 48, 44, 1, 4, 2, True),
        ("02:0a:0a:00:00:07", "02:0c:0c:00:00:03", 38, 36, 0, 2, 0, True),
        ("02:0a:0a:00:00:07", "02:0c:0c:00:00:04", 208, 194, 0, 14, 0, True),
        ("02:0a:0a:00:00:08", "02:0c:0c:00:00:09", 66, 61, 0, 5, 0, True),
        ("02:0a:0a:00:00:08", "02:0c:0c:00:00:0a", 22, 17, 0, 5, 0, True),
        ("02:0c:0c:00:00:02", "02:0a:0a:00:00:07", 42, 41, 0, 1, 0, False),
        ("02:0c:0c:00:00:03", "02:0a:0a:00:00:07", 35, 34, 0, 1, 0, False),
        ("02:0c:0c:00:00:04", "02:0a:0a:00:00:07", 209, 209, 0, 0, 0, False),
        ("02:0c:0c:00:00:05", "02:0a:0a:00:00:05", 351, 344, 0, 7, 0, False),
        ("02:0c:0c:00:00:06", "02:0a:0a:00:00:04", 21, 21, 0, 0, 0, False),
        ("02:0c:0c:00:00:09", "02:0a:0a:00:00:08", 64, 62, 0, 2, 0, False),
    ],
    "loss_rows": [
        ("10.0.0.11:40000 <-> 172.16.0.2:80", 3, 0, 0, 0),
        ("10.0.0.3:40000 <-> 172.16.0.1:80", 29, 0, 0, 0),
        ("10.0.0.5:40000 <-> 172.16.0.3:22", 345, 0, 2, 0),
        ("10.0.0.4:40000 <-> 172.16.0.4:80", 2, 0, 0, 0),
        ("10.0.0.2:40000 <-> 172.16.0.5:80", 12, 0, 0, 0),
        ("10.0.0.4:40001 <-> 172.16.0.6:22", 197, 0, 0, 0),
        ("10.0.0.9:40000 <-> 172.16.0.7:22", 46, 0, 0, 0),
        ("10.0.0.9:40001 <-> 172.16.0.8:80", 1, 0, 0, 0),
        ("10.0.0.10:40000 <-> 172.16.0.9:22", 13, 0, 0, 0),
        ("10.0.0.6:40000 <-> 172.16.0.10:80", 21, 0, 0, 0),
        ("10.0.0.9:40002 <-> 172.16.0.11:80", 4, 0, 0, 0),
        ("10.0.0.2:40001 <-> 172.16.0.12:22", 23, 0, 0, 0),
    ],
    "coverage_rows": [
        ("02:0a:0a:00:00:03", True, 6, 6),
        ("02:0a:0a:00:00:04", True, 24, 24),
        ("02:0a:0a:00:00:05", True, 362, 362),
        ("02:0a:0a:00:00:07", True, 274, 273),
        ("02:0a:0a:00:00:08", True, 76, 76),
        ("02:0c:0c:00:00:02", False, 40, 40),
        ("02:0c:0c:00:00:03", False, 33, 33),
        ("02:0c:0c:00:00:04", False, 207, 207),
        ("02:0c:0c:00:00:05", False, 366, 349),
        ("02:0c:0c:00:00:06", False, 25, 19),
        ("02:0c:0c:00:00:09", False, 63, 63),
        ("02:0c:0c:00:00:0a", False, 17, 17),
        ("02:0c:0c:00:00:0b", False, 7, 5),
    ],
}


class TestPreRewriteGolden:
    """Pin the pass rewrites against the deleted batch implementations.

    The wrappers now replay the very pass classes under test, so the
    streaming-vs-batch comparisons above cannot catch semantic drift
    introduced by the rewrite itself; these values were captured from
    the pre-rewrite code on a fixed seed.
    """

    def test_results_match_pre_rewrite_implementations(self, small_setup):
        _, _, report, _ = small_setup
        g = PRE_REWRITE_GOLDEN
        summary = report.passes["summary"]
        assert summary.jframes == g["jframes"]
        assert summary.events_per_jframe == pytest.approx(
            g["events_per_jframe"]
        )
        assert summary.unique_clients == g["unique_clients"]
        assert summary.unique_aps == g["unique_aps"]
        assert summary.transmission_attempts == g["attempts"]
        assert summary.frame_exchanges == g["exchanges"]
        assert summary.tcp_flows == g["tcp_flows"]
        assert summary.completed_handshakes == g["handshakes"]

        cdf = report.passes["dispersion"]
        assert cdf.n == g["dispersion_n"]
        assert sum(cdf.samples_us) == pytest.approx(g["dispersion_sum"])

        timeline = report.passes["activity"]
        assert [
            b.n_active_clients for b in timeline.bins
        ] == g["active_clients_series"]
        assert [b.n_active_aps for b in timeline.bins] == g["active_aps_series"]
        assert sum(b.data_bytes for b in timeline.bins) == g["data_bytes_total"]
        assert (
            sum(b.beacon_frames for b in timeline.bins)
            == g["beacon_frames_total"]
        )
        assert report.passes["broadcast_airtime"] == pytest.approx(g["airtime"])

        protection = report.passes["protection"]
        assert [
            len(b.protecting_aps) for b in protection.bins
        ] == g["protecting_series"]
        assert [
            b.n_overprotective for b in protection.bins
        ] == g["overprotective_series"]
        assert [
            b.n_affected_g_clients for b in protection.bins
        ] == g["affected_series"]
        assert len(protection.b_clients) == g["b_clients"]
        assert len(protection.g_clients) == g["g_clients"]

        truncated, pairs = interference_projection(
            report.passes["interference"]
        )
        assert truncated == g["interference_truncated"]
        assert pairs == g["interference_pairs"]
        assert tcploss_projection(report.passes["tcp_loss"]) == g["loss_rows"]
        assert coverage_projection(
            report.passes["wired_coverage"]
        ) == g["coverage_rows"]


@pytest.fixture(scope="module")
def building_setup():
    """The paper-shaped deployment (compressed): the acceptance scenario."""
    from repro.experiments.common import building_config

    config = building_config(seed=7, duration_us=4_000_000)
    artifacts = run_scenario(config)
    report = JigsawPipeline().run(
        artifacts.radio_traces,
        clock_groups=artifacts.clock_groups(),
        passes=list(make_passes(config, artifacts.wired_trace).values()),
    )
    return config, artifacts, report


class TestStreamingParityBuilding:
    def test_inline_passes_match_batch(self, building_setup):
        config, artifacts, report = building_setup
        assert_all_equal(
            report.passes, batch_results(report, artifacts, config)
        )
        assert report.passes["summary"].jframes > 10_000
        assert report.passes["interference"].n_pairs > 0
        assert report.passes["tcp_loss"].n_flows > 0
