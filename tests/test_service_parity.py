"""Crash/resume parity: the service daemon against batch, and itself.

The acceptance property of service mode is **bit identity under
interruption**: a daemon killed mid-trace (SIGKILL-equivalent — no
flushing, no final checkpoint) and restored from its last periodic
checkpoint must finish with exactly the jframes, health ledger, flows
and sealed pass windows of one uninterrupted run.  And an uninterrupted
daemon run must itself be bit-identical to the batch pipeline over the
same records — serial and pool-sharded.

The building scenario (compressed duration, full fleet shape) is the
acceptance case; flash_crowd covers a second traffic shape.  Crash
points are randomized (seeded) so each run of the suite exercises
different cut positions in the record stream.
"""

import dataclasses
import random

import pytest

from repro.core.pipeline import JigsawPipeline
from repro.core.unify.sharded import ShardedUnifier
from repro.service import JigsawDaemon, load_checkpoint
from repro.service.windows import (
    WindowedInterferencePass,
    WindowedLossPass,
    WindowedSummaryPass,
)
from repro.sim import ScenarioConfig
from repro.sim.registry import scenario_config
from repro.sim.stream import live_feed, stream_scenario

pytestmark = pytest.mark.service

WINDOW_US = 200_000
#: Cadences are sized per scenario: a checkpoint pickles the daemon's
#: full state (which grows with records consumed when materializing),
#: so a fine cadence on a six-figure-record trace turns the suite
#: quadratic.  Both still force several checkpoints per run.
BUILDING_CHECKPOINT_EVERY = 40_000
FLASH_CHECKPOINT_EVERY = 4_000


def make_passes():
    return [
        WindowedSummaryPass(WINDOW_US),
        WindowedInterferencePass(WINDOW_US),
        WindowedLossPass(WINDOW_US),
    ]


def fingerprints(jframes):
    return [
        (
            jf.timestamp_us,
            jf.kind,
            jf.channel,
            jf.frame_len,
            jf.fcs,
            jf.rate_mbps,
            jf.duration_us,
            jf.dispersion_us,
            None if jf.transmitter is None else jf.transmitter.value,
            tuple(
                (i.radio_id, i.local_us, i.universal_us)
                for i in jf.instances
            ),
        )
        for jf in jframes
    ]


def published_map(service_report):
    return {
        w.key: (w.start_us, w.end_us, w.payload)
        for w in service_report.published
    }


def assert_reports_identical(report_a, report_b):
    """Jframes, stats, flows, offsets: the cross-mode parity contract."""
    assert fingerprints(report_a.jframes) == fingerprints(report_b.jframes)
    assert report_a.unification.stats == report_b.unification.stats
    assert report_a.attempt_stats == report_b.attempt_stats
    assert report_a.exchange_stats == report_b.exchange_stats
    assert [str(f.key) for f in report_a.flows] == [
        str(f.key) for f in report_b.flows
    ]
    assert report_a.bootstrap.offsets_us == report_b.bootstrap.offsets_us


def assert_service_identical(svc_a, svc_b):
    """The full crash/resume contract: report + health + sealed windows."""
    assert_reports_identical(svc_a.report, svc_b.report)
    assert dataclasses.asdict(svc_a.report.health) == dataclasses.asdict(
        svc_b.report.health
    )
    pub_a, pub_b = published_map(svc_a), published_map(svc_b)
    assert pub_a == pub_b
    assert pub_a, "parity over zero published windows proves nothing"


def run_daemon(config, tmp_path, cadence, stop_after=None, name="svc.ckpt"):
    checkpoint = tmp_path / name
    daemon = JigsawDaemon(
        live_feed(config),
        passes=make_passes(),
        checkpoint_path=checkpoint,
        checkpoint_every=cadence,
    )
    result = daemon.serve(stop_after_records=stop_after)
    return daemon, result, checkpoint


def crash_and_resume(config, tmp_path, cadence, stop_after):
    """Kill a daemon at ``stop_after`` records, restore, run to the end."""
    crashed, result, checkpoint = run_daemon(
        config, tmp_path, cadence, stop_after=stop_after
    )
    assert result is None, "daemon should have crashed, not finished"
    assert crashed.total_consumed == stop_after
    restored = JigsawDaemon.restore(
        checkpoint, live_feed(config), checkpoint_every=cadence
    )
    assert restored.total_consumed <= stop_after
    assert restored.total_consumed >= stop_after - 2 * cadence
    svc = restored.serve()
    assert svc is not None and svc.resumed, f"resume failed (stop={stop_after})"
    return svc


class TestBuildingScenario:
    """The acceptance case: building shape, compressed duration."""

    @pytest.fixture(scope="class")
    def config(self):
        return ScenarioConfig.building(seed=7, duration_us=2_000_000)

    @pytest.fixture(scope="class")
    def reference(self, config, tmp_path_factory):
        """One uninterrupted daemon run (checkpointing enabled)."""
        daemon, svc, _ = run_daemon(
            config,
            tmp_path_factory.mktemp("service-ref"),
            BUILDING_CHECKPOINT_EVERY,
        )
        assert svc is not None
        assert daemon.total_consumed > 3 * BUILDING_CHECKPOINT_EVERY, (
            "scenario too small to exercise multiple checkpoints"
        )
        return daemon, svc

    def test_daemon_matches_batch_serial(self, config, reference):
        _, svc = reference
        streamed = stream_scenario(config)
        batch = JigsawPipeline().run(
            streamed.traces, clock_groups=streamed.clock_groups()
        )
        assert_reports_identical(svc.report, batch)

    def test_daemon_matches_batch_pool_sharded(self, config, reference):
        _, svc = reference
        streamed = stream_scenario(config)
        batch = JigsawPipeline(
            unifier=ShardedUnifier(max_workers=2)
        ).run(streamed.traces, clock_groups=streamed.clock_groups())
        assert_reports_identical(svc.report, batch)

    @pytest.mark.parametrize("crash_draw", [0, 1, 2])
    def test_crash_resume_bit_identical(
        self, config, reference, tmp_path, crash_draw
    ):
        daemon, svc_ref = reference
        rng = random.Random()  # fresh entropy: any cut point must work
        stop = rng.randrange(
            BUILDING_CHECKPOINT_EVERY + 1, daemon.total_consumed - 1
        )
        svc = crash_and_resume(
            config, tmp_path, BUILDING_CHECKPOINT_EVERY, stop_after=stop
        )
        try:
            assert_service_identical(svc, svc_ref)
        except AssertionError as err:
            raise AssertionError(
                f"crash/resume divergence at stop={stop}"
            ) from err

    def test_crash_before_first_checkpoint_has_no_recovery_point(
        self, config, tmp_path
    ):
        """A kill before any checkpoint leaves nothing to restore — the
        operator restarts from scratch and still converges."""
        crashed, result, checkpoint = run_daemon(
            config,
            tmp_path,
            BUILDING_CHECKPOINT_EVERY,
            stop_after=BUILDING_CHECKPOINT_EVERY // 2,
        )
        assert result is None
        assert not checkpoint.exists()
        with pytest.raises(FileNotFoundError):
            load_checkpoint(checkpoint)

    def test_checkpoint_survives_reload(self, config, reference, tmp_path):
        """The codec round-trips a mid-run state verbatim."""
        stop = 2 * BUILDING_CHECKPOINT_EVERY + 500
        crashed, result, checkpoint = run_daemon(
            config, tmp_path, BUILDING_CHECKPOINT_EVERY, stop_after=stop
        )
        assert result is None
        state = load_checkpoint(checkpoint)
        # Cadence fires at the first round boundary past the threshold,
        # so the captured count sits just past 2x the cadence.
        assert 2 * BUILDING_CHECKPOINT_EVERY <= state.total_consumed < stop
        assert sum(state.consumed.values()) == state.total_consumed
        assert state.engines and state.drive is not None


class TestFlashCrowdScenario:
    """Second traffic shape: bursty association storm."""

    @pytest.fixture(scope="class")
    def config(self):
        return scenario_config("flash_crowd", "tiny", seed=5)

    @pytest.fixture(scope="class")
    def reference(self, config, tmp_path_factory):
        daemon, svc, _ = run_daemon(
            config,
            tmp_path_factory.mktemp("service-fc"),
            FLASH_CHECKPOINT_EVERY,
        )
        assert svc is not None
        return daemon, svc

    def test_daemon_matches_batch_serial(self, config, reference):
        _, svc = reference
        streamed = stream_scenario(config)
        batch = JigsawPipeline().run(
            streamed.traces, clock_groups=streamed.clock_groups()
        )
        assert_reports_identical(svc.report, batch)

    def test_crash_resume_bit_identical(self, config, reference, tmp_path):
        daemon, svc_ref = reference
        rng = random.Random()
        stop = rng.randrange(
            FLASH_CHECKPOINT_EVERY + 1, daemon.total_consumed - 1
        )
        svc = crash_and_resume(
            config, tmp_path, FLASH_CHECKPOINT_EVERY, stop_after=stop
        )
        assert_service_identical(svc, svc_ref)

    def test_double_crash_double_resume(self, config, reference, tmp_path):
        """Two successive kills, two restores — checkpoints chain."""
        daemon, svc_ref = reference
        total = daemon.total_consumed
        first = FLASH_CHECKPOINT_EVERY + total // 3
        second = min(total - 1, first + total // 3)
        crashed, result, checkpoint = run_daemon(
            config, tmp_path, FLASH_CHECKPOINT_EVERY, stop_after=first
        )
        assert result is None
        d2 = JigsawDaemon.restore(
            checkpoint,
            live_feed(config),
            checkpoint_every=FLASH_CHECKPOINT_EVERY,
        )
        assert d2.serve(stop_after_records=second) is None
        d3 = JigsawDaemon.restore(
            checkpoint,
            live_feed(config),
            checkpoint_every=FLASH_CHECKPOINT_EVERY,
        )
        svc = d3.serve()
        assert svc is not None
        assert_service_identical(svc, svc_ref)
