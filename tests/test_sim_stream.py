"""Streaming sim -> pipeline ingest: bit parity with the materialized path.

``stream_scenario`` must feed ``JigsawPipeline.run`` through the same
single-read ``StreamingRadioTrace`` interface trace files use, producing
output bit-identical — jframe for jframe — to materializing the run with
``run_scenario`` and piping the traces in afterwards.  The building
scenario is the acceptance case.
"""

import pytest

from repro.core.pipeline import JigsawPipeline
from repro.jtrace.io import StreamingRadioTrace
from repro.sim import ScenarioConfig, run_scenario
from repro.sim.stream import stream_scenario


def fingerprints(jframes):
    return [
        (
            jf.timestamp_us,
            jf.kind,
            jf.channel,
            jf.frame_len,
            jf.fcs,
            jf.rate_mbps,
            jf.duration_us,
            jf.dispersion_us,
            None if jf.transmitter is None else jf.transmitter.value,
            tuple(
                (i.radio_id, i.local_us, i.universal_us)
                for i in jf.instances
            ),
        )
        for jf in jframes
    ]


def assert_reports_identical(streamed_report, batch_report):
    assert fingerprints(streamed_report.jframes) == fingerprints(
        batch_report.jframes
    )
    s, b = streamed_report.unification.stats, batch_report.unification.stats
    assert (s.records_in, s.jframes, s.instances_unified, s.resyncs) == (
        b.records_in,
        b.jframes,
        b.instances_unified,
        b.resyncs,
    )
    assert [str(f.key) for f in streamed_report.flows] == [
        str(f.key) for f in batch_report.flows
    ]
    assert (
        streamed_report.bootstrap.offsets_us
        == batch_report.bootstrap.offsets_us
    )


class TestStreamedScenario:
    @pytest.fixture(scope="class")
    def small_pair(self):
        config = ScenarioConfig.small(seed=42)
        artifacts = run_scenario(config)
        batch = JigsawPipeline().run(
            artifacts.radio_traces, clock_groups=artifacts.clock_groups()
        )
        streamed = stream_scenario(config)
        report = JigsawPipeline().run(
            streamed.traces, clock_groups=streamed.clock_groups()
        )
        return artifacts, batch, streamed, report

    def test_small_scenario_bit_parity(self, small_pair):
        _, batch, _, report = small_pair
        assert_reports_identical(report, batch)

    def test_traces_are_streaming_readers(self, small_pair):
        _, _, streamed, _ = small_pair
        assert all(
            isinstance(t, StreamingRadioTrace) for t in streamed.traces
        )

    def test_record_ownership_moves_to_readers(self, small_pair):
        """A streamed run keeps one copy of the trace: the radios are
        drained, the consuming readers hold the records."""
        artifacts, _, streamed, _ = small_pair
        streamed_artifacts = streamed.artifacts()
        assert all(len(t) == 0 for t in streamed_artifacts.radio_traces)
        assert sum(len(t) for t in streamed.traces) == sum(
            len(t) for t in artifacts.radio_traces
        )

    def test_oracle_survives_streaming(self, small_pair):
        artifacts, _, streamed, _ = small_pair
        oracle = streamed.artifacts()
        assert len(oracle.ground_truth) == len(artifacts.ground_truth)
        assert len(oracle.flow_outcomes) == len(artifacts.flow_outcomes)
        assert len(oracle.wired_trace) == len(artifacts.wired_trace)

    def test_artifacts_completes_undrained_run(self):
        """artifacts() finishes the simulation even if nothing consumed
        the streaming traces."""
        streamed = stream_scenario(ScenarioConfig.tiny(seed=3))
        oracle = streamed.artifacts()
        assert oracle.events_run > 0
        assert oracle.ground_truth
        assert streamed._world.kernel.now_us == oracle.config.duration_us


class TestLazyExecution:
    def test_bootstrap_prefix_advances_sim_partially(self):
        """Pulling only a window prefix simulates only (roughly) that
        window — the overlap the fused prepass exists for."""
        config = ScenarioConfig.small(seed=9)
        streamed = stream_scenario(config, chunk_us=100_000)
        trace = streamed.traces[0]
        first = trace.first_timestamp_us
        assert first is not None
        trace.buffered_until(first + 200_000)
        now = streamed._world.kernel.now_us
        assert 0 < now < config.duration_us, now

    def test_chunk_must_be_positive(self):
        with pytest.raises(ValueError, match="chunk_us"):
            stream_scenario(ScenarioConfig.tiny(), chunk_us=0)


class TestBuildingScenarioParity:
    def test_building_bit_parity(self):
        """The acceptance case: the paper-shaped building scenario,
        streamed sim ingest bit-identical to the materialized path.

        Duration is compressed (the building *shape* is what matters:
        full fleet, 4 floors, channels 1/6/11, diurnal + microwave) to
        keep the double simulation affordable in the tier-1 suite.
        """
        config = ScenarioConfig.building(seed=7, duration_us=2_000_000)
        artifacts = run_scenario(config)
        batch = JigsawPipeline().run(
            artifacts.radio_traces, clock_groups=artifacts.clock_groups()
        )
        streamed = stream_scenario(config)
        report = JigsawPipeline().run(
            streamed.traces, clock_groups=streamed.clock_groups()
        )
        assert_reports_identical(report, batch)
        assert report.unification.stats.jframes > 1_000
