"""Incremental (feed/finish) stage APIs must match their batch wrappers,
plus the I/O and cache satellites of the streaming rework."""

import gzip

import pytest

from repro.core.link.attempt import AttemptAssembler
from repro.core.link.exchange import ExchangeAssembler
from repro.core.sync.bootstrap import bootstrap_synchronization
from repro.core.transport.flows import FlowCollector, collect_flows
from repro.core.unify import Unifier
from repro.jtrace.io import RadioTrace, iter_trace_records, read_trace, write_trace
from repro.jtrace.records import RecordKind, TraceRecord


@pytest.fixture(scope="module")
def small_jframes():
    from repro.sim import ScenarioConfig, run_scenario

    artifacts = run_scenario(ScenarioConfig.small(seed=42))
    bootstrap = bootstrap_synchronization(
        artifacts.radio_traces, clock_groups=artifacts.clock_groups()
    )
    return Unifier().unify(artifacts.radio_traces, bootstrap).jframes


def attempt_fingerprint(attempt):
    return (
        attempt.transmitter,
        attempt.receiver,
        None if attempt.data is None else id(attempt.data),
        None if attempt.cts is None else id(attempt.cts),
        None if attempt.ack is None else id(attempt.ack),
    )


def exchange_fingerprint(exchange):
    return (
        exchange.transmitter,
        exchange.receiver,
        tuple(attempt_fingerprint(a) for a in exchange.attempts),
        exchange.delivered,
        exchange.needed_inference,
    )


class TestIncrementalAttempts:
    def test_feed_matches_assemble(self, small_jframes):
        batch_asm = AttemptAssembler()
        batch = batch_asm.assemble(small_jframes)

        inc_asm = AttemptAssembler()
        streamed = []
        for jframe in small_jframes:
            streamed.extend(inc_asm.feed(jframe))
        streamed.extend(inc_asm.finish())

        assert [attempt_fingerprint(a) for a in streamed] == [
            attempt_fingerprint(a) for a in batch
        ]
        assert inc_asm.stats == batch_asm.stats

    def test_fed_attempts_are_sealed(self, small_jframes):
        """An attempt returned by feed() must never mutate afterwards."""
        asm = AttemptAssembler()
        emitted = []  # (attempt, fingerprint at emission time)
        for jframe in small_jframes:
            for attempt in asm.feed(jframe):
                emitted.append((attempt, attempt_fingerprint(attempt)))
        for attempt in asm.finish():
            emitted.append((attempt, attempt_fingerprint(attempt)))
        assert emitted
        for attempt, emitted_fp in emitted:
            assert attempt_fingerprint(attempt) == emitted_fp


class TestAssemblerReuse:
    def test_attempt_assembler_reusable_after_finish(self, small_jframes):
        asm = AttemptAssembler()
        first = asm.assemble(small_jframes)
        second = asm.assemble(small_jframes)
        # finish() resets the pending state: a second run over the same
        # stream must produce the same structure (stats keep accumulating).
        assert [attempt_fingerprint(a) for a in second] == [
            attempt_fingerprint(a) for a in first
        ]
        fresh = AttemptAssembler()
        fresh.assemble(small_jframes)
        # Counters accumulate across runs (seed semantics): attempts is
        # this run's data attempts plus the cumulative orphaned ACKs.
        assert asm.stats.jframes_in == 2 * fresh.stats.jframes_in
        assert asm.stats.attempts == (
            fresh.stats.attempts + fresh.stats.acks_orphaned
        )

    def test_exchange_assembler_reusable_after_finish(self, small_jframes):
        attempts = AttemptAssembler().assemble(small_jframes)
        asm = ExchangeAssembler()
        first = asm.assemble(attempts)
        second = asm.assemble(attempts)
        assert [exchange_fingerprint(e) for e in second] == [
            exchange_fingerprint(e) for e in first
        ]
        fresh = ExchangeAssembler()
        fresh.assemble(attempts)
        assert asm.stats.exchanges == fresh.stats.exchanges


class TestIncrementalExchanges:
    def test_feed_matches_assemble(self, small_jframes):
        attempts = AttemptAssembler().assemble(small_jframes)

        batch_asm = ExchangeAssembler()
        batch = batch_asm.assemble(attempts)

        inc_asm = ExchangeAssembler()
        streamed = []
        for attempt in attempts:
            streamed.extend(inc_asm.feed(attempt))
        streamed.extend(inc_asm.finish())
        streamed.sort(key=lambda e: e.start_us)

        assert [exchange_fingerprint(e) for e in streamed] == [
            exchange_fingerprint(e) for e in batch
        ]
        assert inc_asm.stats == batch_asm.stats


class TestFlowCollector:
    def test_feed_matches_collect_flows(self, small_jframes):
        attempts = AttemptAssembler().assemble(small_jframes)
        exchanges = ExchangeAssembler().assemble(attempts)

        batch = collect_flows(exchanges)
        collector = FlowCollector()
        # Feed in closure-ish (shuffled) order: result must not depend on it.
        for exchange in reversed(exchanges):
            collector.feed(exchange)
        streamed = collector.finish()

        assert [f.key for f in streamed] == [f.key for f in batch]
        for sf, bf in zip(streamed, batch):
            assert [
                (o.time_us, id(o.exchange)) for o in sf.observations
            ] == [(o.time_us, id(o.exchange)) for o in bf.observations]


def _make_record(radio_id, ts, channel=1, snap=b"x" * 24):
    return TraceRecord(
        radio_id=radio_id, timestamp_us=ts, kind=RecordKind.VALID,
        channel=channel, rate_mbps=11.0, rssi_dbm=-60.0,
        frame_len=len(snap), fcs=1234, snap=snap, duration_us=50,
    )


class TestSortedFastPath:
    def test_presorted_returns_self(self):
        trace = RadioTrace(0, 1, [_make_record(0, t) for t in (1, 2, 2, 5)])
        assert trace.sorted_by_local_time() is trace

    def test_unsorted_returns_sorted_copy(self):
        trace = RadioTrace(0, 1, [_make_record(0, t) for t in (5, 1, 3)])
        ordered = trace.sorted_by_local_time()
        assert ordered is not trace
        assert [r.timestamp_us for r in ordered.records] == [1, 3, 5]
        # Original untouched.
        assert [r.timestamp_us for r in trace.records] == [5, 1, 3]

    def test_empty_trace(self):
        trace = RadioTrace(0, 1, [])
        assert trace.sorted_by_local_time() is trace


class TestStreamingTraceReader:
    def test_roundtrip_with_tiny_chunks(self, tmp_path):
        records = [
            _make_record(3, 100 * i, snap=bytes([i % 256]) * (i % 40))
            for i in range(200)
        ]
        trace = RadioTrace(3, 6, records)
        data_path = write_trace(trace, tmp_path)
        # A chunk smaller than one record forces the partial-record path.
        streamed = list(iter_trace_records(data_path, chunk_bytes=7))
        assert streamed == records
        # And the full read_trace wrapper agrees.
        back = read_trace(data_path)
        assert back.records == records
        assert (back.radio_id, back.channel) == (3, 6)

    def test_truncated_file_raises(self, tmp_path):
        records = [_make_record(1, 10, snap=b"y" * 30)]
        trace = RadioTrace(1, 1, records)
        data_path = write_trace(trace, tmp_path)
        raw = gzip.decompress(data_path.read_bytes())
        data_path.write_bytes(gzip.compress(raw[:-4]))
        with pytest.raises(ValueError, match="truncated"):
            list(iter_trace_records(data_path))


class TestParseCacheEviction:
    def test_bounded_eviction_ages_one_entry(self, monkeypatch):
        import repro.core.sync.refs as refs

        monkeypatch.setattr(refs, "_PARSE_CACHE_LIMIT", 4)
        refs._PARSE_CACHE.clear()
        records = [
            _make_record(0, i, snap=bytes([i]) * 24) for i in range(5)
        ]
        for record in records[:4]:
            refs.parse_record_frame(record)
        # A cache hit is a bare lookup — it must not grow the cache.
        refs.parse_record_frame(records[0])
        assert len(refs._PARSE_CACHE) == 4
        # Inserting a fifth entry evicts exactly one — the oldest
        # inserted, not the whole cache.
        refs.parse_record_frame(records[4])
        assert len(refs._PARSE_CACHE) == 4
        oldest_key = (records[0].snap, records[0].frame_len)
        assert oldest_key not in refs._PARSE_CACHE
        newest_key = (records[4].snap, records[4].frame_len)
        assert newest_key in refs._PARSE_CACHE
        refs._PARSE_CACHE.clear()
