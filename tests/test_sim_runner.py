"""Integration tests for the end-to-end scenario runner."""

import pytest

from repro.dot11.frame import FrameType
from repro.jtrace.records import RecordKind
from repro.net.packets import ArpPacket, try_parse_packet
from repro.sim import ScenarioConfig, run_scenario


@pytest.fixture(scope="module")
def small_run():
    return run_scenario(ScenarioConfig.small(seed=42))


class TestRunnerBasics:
    def test_radio_count(self, small_run):
        assert len(small_run.radio_traces) == small_run.config.n_radios

    def test_all_stations_associate(self, small_run):
        assert all(s.associated for s in small_run.stations)

    def test_ground_truth_time_ordered(self, small_run):
        starts = [tx.start_us for tx in small_run.ground_truth]
        assert starts == sorted(starts)

    def test_traces_locally_time_ordered(self, small_run):
        for trace in small_run.radio_traces:
            stamps = [r.timestamp_us for r in trace]
            assert stamps == sorted(stamps)

    def test_most_flows_complete(self, small_run):
        outcomes = small_run.flow_outcomes
        assert outcomes
        completed = sum(o.completed for o in outcomes)
        assert completed / len(outcomes) > 0.6

    def test_duplicate_observations_exist(self, small_run):
        """Multiple radios hear the same transmission — the property trace
        merging exploits ("on average the monitoring platform makes three
        observations of every observed transmission", Section 7.1)."""
        from collections import Counter

        counts = Counter()
        for trace in small_run.radio_traces:
            for record in trace:
                if record.kind is RecordKind.VALID:
                    counts[record.truth_txid] += 1
        multiply_observed = sum(1 for c in counts.values() if c >= 2)
        assert multiply_observed > len(counts) * 0.5

    def test_error_records_present(self, small_run):
        kinds = {
            record.kind
            for trace in small_run.radio_traces
            for record in trace
        }
        assert RecordKind.CORRUPT in kinds or RecordKind.PHY_ERROR in kinds

    def test_wired_trace_nonempty(self, small_run):
        assert small_run.wired_trace
        downlink = [r for r in small_run.wired_trace if r.downlink]
        uplink = [r for r in small_run.wired_trace if not r.downlink]
        assert downlink and uplink

    def test_arp_broadcasts_on_air(self, small_run):
        arp_frames = [
            tx
            for tx in small_run.ground_truth
            if tx.frame.ftype is FrameType.DATA
            and tx.frame.is_broadcast
            and isinstance(try_parse_packet(tx.frame.body), ArpPacket)
        ]
        assert arp_frames
        # Broadcasts always go at the lowest rate (Section 7.1).
        assert all(tx.rate.mbps == 1.0 for tx in arp_frames)

    def test_beacons_from_every_active_ap(self, small_run):
        beacon_sources = {
            tx.frame.addr2
            for tx in small_run.ground_truth
            if tx.frame.ftype is FrameType.BEACON
        }
        assert len(beacon_sources) == len(small_run.aps)

    def test_pod_reduction_order_valid(self, small_run):
        order = small_run.pod_reduction_order()
        assert sorted(order) == list(range(small_run.config.n_pods))

    def test_radios_of_pods(self, small_run):
        radios = small_run.radios_of_pods([0, 1])
        assert len(radios) == 8
        assert len(set(radios)) == 8

    def test_determinism(self):
        a = run_scenario(ScenarioConfig.tiny(seed=9))
        b = run_scenario(ScenarioConfig.tiny(seed=9))
        assert len(a.ground_truth) == len(b.ground_truth)
        assert [t.txid for t in a.ground_truth] == [t.txid for t in b.ground_truth]
        ra = [r for tr in a.radio_traces for r in tr]
        rb = [r for tr in b.radio_traces for r in tr]
        assert ra == rb

    def test_different_seeds_differ(self):
        a = run_scenario(ScenarioConfig.tiny(seed=1))
        b = run_scenario(ScenarioConfig.tiny(seed=2))
        assert len(a.ground_truth) != len(b.ground_truth) or [
            t.frame for t in a.ground_truth
        ] != [t.frame for t in b.ground_truth]


class TestProtectionInRunner:
    def test_11b_presence_triggers_protection(self):
        art = run_scenario(
            ScenarioConfig.small(seed=7, fraction_11b_clients=0.5)
        )
        assert any(ap.protection_enabled for ap in art.aps)

    def test_cts_to_self_appears(self):
        art = run_scenario(
            ScenarioConfig.small(seed=7, fraction_11b_clients=0.5)
        )
        cts = [
            tx for tx in art.ground_truth if tx.frame.ftype is FrameType.CTS
        ]
        assert cts
