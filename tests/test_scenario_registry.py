"""The scenario-family matrix: every registered family, tiny scale.

Per the registry contract, each family must (1) build a config at every
scale, (2) produce locally-ordered traces, (3) survive the full pipeline
with all analysis passes registered, (4) be seed-stable — same seed,
identical traces, even after unrelated components are reconfigured — and
(5) hold pipeline parity between materialized and streamed sim ingest.
"""

import pytest

from repro.core.analysis import (
    ActivityPass,
    BroadcastAirtimePass,
    DispersionPass,
    InterferencePass,
    ProtectionPass,
    SummaryPass,
    TcpLossPass,
    WiredCoveragePass,
)
from repro.core.pipeline import JigsawPipeline
from repro.sim import REGISTRY, SCALES, run_scenario, scenario_config
from repro.sim.registry import ScenarioRegistry
from repro.sim.stream import stream_scenario

SEED = 17

FAMILIES = REGISTRY.names()

#: Components considered "unrelated" to each family's tentpole behavior —
#: reconfiguring them must not move the family's placements, clocks, or
#: (for roaming) its roam schedule.
UNRELATED_TWEAKS = {
    "building": dict(web_weight=0.1, scp_weight=0.8),
    "roaming": dict(web_weight=0.1, scp_weight=0.8),
    "hidden_terminal": dict(probe_burst=2),
    "scanning": dict(web_weight=0.1, scp_weight=0.8),
    "flash_crowd": dict(probe_burst=2),
    "campus": dict(web_weight=0.1, scp_weight=0.8),
}


def all_passes(config, wired_trace):
    duration = config.duration_us
    bin_us = max(1, duration // 8)
    return [
        ActivityPass(duration, bin_us=bin_us),
        BroadcastAirtimePass(duration),
        DispersionPass(),
        ProtectionPass(
            duration, bin_us=bin_us, practical_timeout_us=duration // 4
        ),
        TcpLossPass(),
        SummaryPass(duration),
        InterferencePass(min_packets=10),
        WiredCoveragePass(wired_trace),
    ]


@pytest.fixture(scope="module", params=FAMILIES)
def family_run(request):
    """One tiny-scale run + all-passes report per registered family."""
    name = request.param
    config = scenario_config(name, scale="tiny", seed=SEED)
    artifacts = run_scenario(config)
    report = JigsawPipeline().run(
        artifacts.radio_traces,
        clock_groups=artifacts.clock_groups(),
        passes=all_passes(config, artifacts.wired_trace),
    )
    return name, config, artifacts, report


class TestFamilyMatrix:
    def test_all_scales_build(self, family_run):
        name, _, _, _ = family_run
        family = REGISTRY.get(name)
        for scale in SCALES:
            config = family.config(scale=scale, seed=SEED)
            assert config.duration_us > 0
            assert config.n_radios >= 4

    def test_traces_locally_ordered(self, family_run):
        _, _, artifacts, _ = family_run
        total = 0
        for trace in artifacts.radio_traces:
            stamps = [r.timestamp_us for r in trace]
            assert stamps == sorted(stamps)
            total += len(stamps)
        assert total > 0

    def test_full_pipeline_with_all_passes(self, family_run):
        name, _, artifacts, report = family_run
        stats = report.unification.stats
        assert stats.jframes > 0, name
        assert stats.records_in == sum(
            len(t) for t in artifacts.radio_traces
        )
        assert (
            stats.instances_unified + stats.records_skipped_unsynchronized
            == stats.records_in
        )
        # Every registered pass surrendered a result.
        expected = {
            "activity",
            "broadcast_airtime",
            "dispersion",
            "protection",
            "tcp_loss",
            "summary",
            "interference",
            "wired_coverage",
        }
        assert expected <= set(report.passes)
        assert report.passes["summary"].jframes == stats.jframes

    def test_seed_stable_and_composition_stable(self, family_run):
        name, config, artifacts, _ = family_run
        # Same seed, same config: bit-identical traces.
        again = run_scenario(config)
        assert [r for t in artifacts.radio_traces for r in t] == [
            r for t in again.radio_traces for r in t
        ]
        # Same seed, an *unrelated* component reconfigured: the world the
        # other components built does not move.
        tweaked = run_scenario(config.with_overrides(**UNRELATED_TWEAKS[name]))
        assert [p.position for p in artifacts.station_placements] == [
            p.position for p in tweaked.station_placements
        ]
        assert [
            clock.offset_us for pod in artifacts.pods for clock in pod.clocks
        ] == [clock.offset_us for pod in tweaked.pods for clock in pod.clocks]
        if name == "roaming":
            assert [
                (e.time_us, e.station_index) for e in artifacts.roam_events
            ] == [(e.time_us, e.station_index) for e in tweaked.roam_events]

    def test_streamed_ingest_pipeline_parity(self, family_run):
        """Materialized sim -> pipeline == streamed sim -> pipeline,
        jframe for jframe, for every family."""
        name, config, _, batch = family_run
        streamed = stream_scenario(config)
        report = JigsawPipeline().run(
            streamed.traces, clock_groups=streamed.clock_groups()
        )
        assert _fingerprints(report.jframes) == _fingerprints(batch.jframes)
        assert report.unification.stats.jframes == batch.unification.stats.jframes
        assert len(report.flows) == len(batch.flows)


def _fingerprints(jframes):
    return [
        (
            jf.timestamp_us,
            jf.kind,
            jf.channel,
            jf.frame_len,
            jf.fcs,
            tuple(
                (i.radio_id, i.local_us, i.universal_us)
                for i in jf.instances
            ),
        )
        for jf in jframes
    ]


class TestFamilySignals:
    """Each family produces the phenomenon it exists to stress (cheap
    tiny-scale checks; the small-scale versions live in the bench suite)."""

    def test_roaming_hands_off(self):
        artifacts = run_scenario(
            scenario_config("roaming", scale="tiny", seed=SEED)
        )
        assert artifacts.roam_events

    def test_hidden_terminal_clusters_are_mutually_distant(self):
        from repro.phy.propagation import distance_m

        artifacts = run_scenario(
            scenario_config("hidden_terminal", scale="tiny", seed=SEED)
        )
        placements = artifacts.station_placements
        spans = [
            distance_m(a.position, b.position)
            for i, a in enumerate(placements)
            for b in placements[i + 1 :]
        ]
        # Two tight clusters: many pairs far beyond carrier-sense range
        # (~53 m at client power), the rest packed close.
        assert sum(1 for s in spans if s > 53.0) >= len(spans) // 3
        # All clients share the single AP.
        assert len({s.ap.mac for s in artifacts.stations}) == 1

    def test_scanning_probes_all_channels(self):
        from repro.dot11.frame import FrameType

        artifacts = run_scenario(
            scenario_config("scanning", scale="tiny", seed=SEED)
        )
        channels = {
            tx.channel.number
            for tx in artifacts.ground_truth
            if tx.frame.ftype is FrameType.PROBE_REQUEST
        }
        assert channels == {1, 6, 11}

    def test_roaming_composes_with_channel_sweeps(self):
        """Scanning + roaming together: a roam must cancel any in-flight
        sweep (stale dwell callbacks may not drag the radio back off the
        new serving channel), and overlapping rescan ticks may not start
        concurrent sweeps."""
        config = scenario_config(
            "scanning",
            scale="tiny",
            seed=SEED,
            roam_fraction=0.6,
            roam_interval_us=100_000,
            client_rescan_interval_us=120_000,  # shorter than a full sweep
        )
        artifacts = run_scenario(config)
        assert artifacts.roam_events
        for station in artifacts.stations:
            # Either a sweep is legitimately dwelling at the cutoff, or
            # the radio sits on its serving channel.
            assert station._sweep_active or (
                station.channel == station.ap.channel
            )

    def test_flash_crowd_concentrates_arrivals(self):
        config = scenario_config("flash_crowd", scale="tiny", seed=SEED)
        artifacts = run_scenario(config)
        assert artifacts.flows
        center = config.workload.flash_center
        width = config.workload.flash_width
        in_wave = sum(
            1
            for f in artifacts.flows
            if abs(f.start_us / config.duration_us - center) < 2 * width
        )
        # Tiny scale is sparse; demand a clear (1.5x) concentration, the
        # bench suite holds the sharper 2x bound at small scale.
        assert in_wave / len(artifacts.flows) > 1.5 * (4 * width)
        # The arrival wave also compresses association times.
        window = config.behavior.start_window_us
        assert window is not None


class TestRegistryMechanics:
    def test_lookup_errors_are_loud(self):
        with pytest.raises(KeyError, match="no scenario family"):
            REGISTRY.get("nope")
        family = REGISTRY.get("roaming")
        with pytest.raises(ValueError, match="no scale"):
            family.config(scale="galactic")

    def test_duplicate_registration_rejected(self):
        registry = ScenarioRegistry()
        family = REGISTRY.get("building")
        registry.register(family)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(family)

    def test_config_overrides_apply(self):
        config = scenario_config(
            "roaming", scale="tiny", seed=3, n_clients=9
        )
        assert config.n_clients == 9
        assert config.behavior.roam_fraction > 0

    def test_at_least_four_new_families(self):
        assert len(REGISTRY) >= 5  # building + the four new families
        for family in REGISTRY:
            assert family.description and family.paper_focus
            assert family.expectations
