"""Unit tests for reference frames, bootstrap sync, and clock tracking."""

import pytest

from repro.core.sync.bootstrap import bootstrap_synchronization
from repro.core.sync.refs import parse_record_frame, reference_key
from repro.core.sync.skew import ClockTrack
from repro.dot11.address import MacAddress
from repro.dot11.frame import make_ack, make_beacon, make_data
from repro.dot11.serialize import frame_to_bytes
from repro.jtrace.io import RadioTrace
from repro.jtrace.records import RecordKind, TraceRecord

SRC = MacAddress.parse("00:0c:0c:00:00:01")
DST = MacAddress.parse("00:0a:0a:00:00:01")


def record_for(frame, radio_id, ts, kind=RecordKind.VALID, channel=1, rate=11.0):
    raw = frame_to_bytes(frame)
    snap = raw[:200]
    if kind is RecordKind.CORRUPT:
        snap = bytes([snap[0]]) + snap[1:]  # content unchanged; kind marks it
    return TraceRecord(
        radio_id=radio_id,
        timestamp_us=ts,
        kind=kind,
        channel=channel,
        rate_mbps=rate,
        rssi_dbm=-60.0,
        frame_len=len(raw),
        fcs=int.from_bytes(raw[-4:], "little"),
        snap=snap,
        duration_us=100,
    )


def data_frame(seq=1, body=b"payload", retry=False):
    return make_data(SRC, DST, DST, seq=seq, body=body, retry=retry)


class TestReferenceKeys:
    def test_data_frame_is_reference(self):
        rec = record_for(data_frame(), radio_id=1, ts=0)
        assert reference_key(rec) is not None

    def test_retry_excluded(self):
        rec = record_for(data_frame(retry=True), radio_id=1, ts=0)
        assert reference_key(rec) is None

    def test_ack_excluded(self):
        rec = record_for(make_ack(SRC), radio_id=1, ts=0)
        assert reference_key(rec) is None

    def test_corrupt_excluded(self):
        rec = record_for(data_frame(), 1, 0, kind=RecordKind.CORRUPT)
        assert reference_key(rec) is None

    def test_beacon_is_reference(self):
        rec = record_for(make_beacon(DST, seq=10), radio_id=1, ts=0)
        assert reference_key(rec) is not None

    def test_same_transmission_same_key(self):
        frame = data_frame(seq=7)
        a = record_for(frame, radio_id=1, ts=100)
        b = record_for(frame, radio_id=2, ts=105)
        assert reference_key(a) == reference_key(b)

    def test_different_frames_different_keys(self):
        a = record_for(data_frame(seq=1), 1, 0)
        b = record_for(data_frame(seq=2), 1, 10)
        assert reference_key(a) != reference_key(b)

    def test_parse_truncated_snap(self):
        frame = data_frame(body=b"z" * 400)
        raw = frame_to_bytes(frame)
        rec = TraceRecord(
            radio_id=1, timestamp_us=0, kind=RecordKind.VALID, channel=1,
            rate_mbps=11.0, rssi_dbm=-50.0, frame_len=len(raw),
            fcs=int.from_bytes(raw[-4:], "little"), snap=raw[:200],
            duration_us=400,
        )
        parsed = parse_record_frame(rec)
        assert parsed is not None
        assert parsed.addr2 == SRC
        assert parsed.seq == frame.seq


def traces_with_offsets(offsets, frames_at):
    """Radios with fixed clock offsets, all hearing the same frames.

    ``frames_at`` maps true time -> frame; radio r's record for a frame at
    true time t carries local timestamp t + offsets[r].
    """
    traces = []
    for radio_id, offset in offsets.items():
        trace = RadioTrace(radio_id=radio_id, channel=1)
        for t, frame in sorted(frames_at.items()):
            trace.append(record_for(frame, radio_id, t + offset))
        traces.append(trace)
    return traces


class TestBootstrap:
    def test_two_radios_relative_offset(self):
        frames = {1000 * i: data_frame(seq=i) for i in range(1, 6)}
        traces = traces_with_offsets({0: 0, 1: 5000}, frames)
        result = bootstrap_synchronization(traces)
        assert result.fully_synchronized
        # universal = local + T; radio 1's clock reads 5000 ahead, so its
        # offset must be 5000 less than radio 0's.
        assert result.offsets_us[1] - result.offsets_us[0] == pytest.approx(-5000)

    def test_transitive_sync_through_intermediate(self):
        # r0 hears frames A; r2 hears frames B; r1 hears both.
        frame_a = data_frame(seq=1)
        frame_b = data_frame(seq=2)
        t0 = RadioTrace(0, 1, [record_for(frame_a, 0, 1000)])
        t1 = RadioTrace(1, 1, [
            record_for(frame_a, 1, 1300),
            record_for(frame_b, 1, 2300),
        ])
        t2 = RadioTrace(2, 1, [record_for(frame_b, 2, 2900)])
        result = bootstrap_synchronization([t0, t1, t2])
        assert result.fully_synchronized
        # r1 reads 300 ahead of r0; r2 reads 900 ahead of r0.
        assert result.offsets_us[1] - result.offsets_us[0] == pytest.approx(-300)
        assert result.offsets_us[2] - result.offsets_us[0] == pytest.approx(-900)

    def test_partition_reported(self):
        # Two islands with no shared frames and no clock bridge.
        frames_a = {1000: data_frame(seq=1)}
        frames_b = {1000: data_frame(seq=2)}
        island_a = traces_with_offsets({0: 0, 1: 50}, frames_a)
        island_b = traces_with_offsets({2: 0, 3: 70}, frames_b)
        result = bootstrap_synchronization(
            island_a + island_b, auto_widen=False
        )
        assert not result.fully_synchronized
        assert set(result.unreachable) == {2, 3}

    def test_clock_group_bridges_partition(self):
        frames_a = {1000: data_frame(seq=1)}
        frames_b = {1000: data_frame(seq=2)}
        island_a = traces_with_offsets({0: 0, 1: 50}, frames_a)
        island_b = traces_with_offsets({2: 50, 3: 70}, frames_b)
        # Radios 1 and 2 share a monitor clock (offset 50 both).
        result = bootstrap_synchronization(
            island_a + island_b, clock_groups=[(1, 2)]
        )
        assert result.fully_synchronized
        assert result.offsets_us[2] == pytest.approx(result.offsets_us[1])

    def test_retries_not_used_as_references(self):
        # The only shared frame is a retransmission — unusable.
        frame = data_frame(seq=1, retry=True)
        t0 = RadioTrace(0, 1, [record_for(frame, 0, 1000)])
        t1 = RadioTrace(1, 1, [record_for(frame, 1, 1100)])
        result = bootstrap_synchronization([t0, t1], auto_widen=False)
        assert result.unreachable  # one of the two cannot be reached

    def test_window_widening_finds_late_references(self):
        # The shared frame appears 3 s in — outside the 1 s window.
        early = data_frame(seq=1)
        late = data_frame(seq=2)
        t0 = RadioTrace(0, 1, [
            record_for(early, 0, 0),
            record_for(late, 0, 3_000_000),
        ])
        t1 = RadioTrace(1, 1, [record_for(late, 1, 3_000_400)])
        narrow = bootstrap_synchronization([t0, t1], auto_widen=False)
        assert not narrow.fully_synchronized
        widened = bootstrap_synchronization([t0, t1], auto_widen=True)
        assert widened.fully_synchronized
        assert widened.window_us > 1_000_000

    def test_empty_traces(self):
        result = bootstrap_synchronization([RadioTrace(0, 1), RadioTrace(1, 1)],
                                           auto_widen=False)
        assert result.unreachable  # nothing to synchronize with


class TestClockTrack:
    def test_identity_without_skew(self):
        track = ClockTrack(radio_id=0, offset_us=100.0)
        assert track.universal_us(50) == pytest.approx(150.0)

    def test_resync_reanchors(self):
        track = ClockTrack(radio_id=0, offset_us=0.0)
        correction = track.resync(1000.0, 1025.0)
        assert correction == pytest.approx(25.0)
        assert track.universal_us(1000.0) == pytest.approx(1025.0)

    def test_skew_learned_from_resyncs(self):
        # True clock runs +100 ppm: local = universal * 1.0001.
        track = ClockTrack(radio_id=0, offset_us=0.0, alpha=1.0)
        for universal in range(100_000, 1_000_001, 100_000):
            local = universal * 1.0001
            track.resync(local, float(universal))
        # After convergence the predicted universal is close for new times.
        local = 2_000_000 * 1.0001
        assert track.universal_us(local) == pytest.approx(2_000_000, abs=20)
        assert track.skew_ppm == pytest.approx(-100, abs=5)

    def test_short_baseline_skips_skew_update(self):
        track = ClockTrack(radio_id=0, offset_us=0.0)
        track.resync(100.0, 105.0)   # 100 us baseline: too short
        assert track.skew_samples == 0
        assert track.skew_ppm == 0.0

    def test_compensation_can_be_disabled(self):
        track = ClockTrack(
            radio_id=0, offset_us=0.0, skew_ppm=100.0, compensate_skew=False
        )
        assert track.universal_us(1_000_000) == pytest.approx(1_000_000)

    def test_resync_counts(self):
        track = ClockTrack(radio_id=0, offset_us=0.0)
        track.resync(50_000.0, 50_010.0)
        track.resync(100_000.0, 100_020.0)
        assert track.resync_count == 2
