"""Parity suite: channel-sharded bootstrap == single-threaded bootstrap.

The sharded coordinator (serial and process-pool modes, incremental
single-read ingest, auto-widen over buffered records) must produce
offsets *bit-identical* to ``bootstrap_synchronization`` — including the
auto-widen partition path and the strict ``SyncPartitionError`` failure
mode the paper hits on pod reduction (Section 6) — and the covering
family must not depend on the order reference sets were collected or
merged.
"""

import random

import pytest

from repro.core.sync.bootstrap import (
    SyncPartitionError,
    _BootstrapShard,
    _select_covering_family,
    bootstrap_synchronization,
    union_shard_payloads,
)
from repro.core.sync.sharded import ShardedBootstrap, resolve_pool_workers
from repro.dot11.address import MacAddress
from repro.dot11.frame import make_data
from repro.dot11.serialize import frame_to_bytes
from repro.jtrace.io import RadioTrace, StreamingRadioTrace
from repro.jtrace.records import RecordKind, TraceRecord

SRC = MacAddress.parse("00:0c:0c:00:00:02")
DST = MacAddress.parse("00:0a:0a:00:00:02")


def record_for(frame, radio_id, ts, channel=1):
    raw = frame_to_bytes(frame)
    return TraceRecord(
        radio_id=radio_id,
        timestamp_us=ts,
        kind=RecordKind.VALID,
        channel=channel,
        rate_mbps=11.0,
        rssi_dbm=-60.0,
        frame_len=len(raw),
        fcs=int.from_bytes(raw[-4:], "little"),
        snap=raw[:200],
        duration_us=100,
    )


def data_frame(seq, body=b"payload"):
    return make_data(SRC, DST, DST, seq=seq, body=body)


def result_fingerprint(result):
    return (
        result.offsets_us,
        result.unreachable,
        result.reference_sets_used,
        result.reference_frames_seen,
        result.window_us,
    )


def assert_parity(traces, clock_groups=(), **kwargs):
    """Serial reference, sharded-serial and sharded-pool must agree."""
    serial = bootstrap_synchronization(
        traces, clock_groups=clock_groups, **kwargs
    )
    window_kwargs = {
        k: v
        for k, v in kwargs.items()
        if k in ("window_us", "auto_widen", "max_window_us")
    }
    sharded = ShardedBootstrap(max_workers=0, **window_kwargs).bootstrap(
        traces, clock_groups=clock_groups
    )
    pooled = ShardedBootstrap(max_workers=2, **window_kwargs).bootstrap(
        traces, clock_groups=clock_groups
    )
    assert result_fingerprint(sharded) == result_fingerprint(serial)
    assert result_fingerprint(pooled) == result_fingerprint(serial)
    return serial


def random_multichannel_traces(seed, n_radios=8, n_frames=40, channels=(1, 6, 11)):
    """Radios spread over channels, hearing per-channel frame subsets.

    Every channel's radios share frames (dense overlap); a designated
    bridge monitor contributes one radio per adjacent channel pair via
    clock groups, mirroring the deployment's shared capture clocks.
    """
    rng = random.Random(seed)
    traces = []
    for radio_id in range(n_radios):
        channel = channels[radio_id % len(channels)]
        offset = rng.randint(-40_000, 40_000)
        records = []
        for i in range(n_frames):
            # Channel-distinct content: seq namespaced by channel.
            frame = data_frame(seq=(channel * 512 + i) % 4096, body=bytes([channel]) * 8)
            true_time = 1_000 + i * 17_000 + (channel * 3)
            if rng.random() < 0.75:  # not every radio hears every frame
                records.append(
                    record_for(frame, radio_id, true_time + offset, channel)
                )
        records.sort(key=lambda r: r.timestamp_us)
        traces.append(RadioTrace(radio_id, channel, records))
    clock_groups = [
        [r for r in range(n_radios) if r % len(channels) in (0, 1)][:2],
        [r for r in range(n_radios) if r % len(channels) in (1, 2)][:2],
    ]
    clock_groups = [g for g in clock_groups if len(g) >= 2]
    return traces, clock_groups


class TestShardedParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_multichannel_property(self, seed):
        traces, clock_groups = random_multichannel_traces(seed)
        result = assert_parity(traces, clock_groups=clock_groups)
        assert result.offsets_us  # something synchronized

    def test_building_scenario(self):
        from repro.sim import ScenarioConfig, run_scenario

        artifacts = run_scenario(ScenarioConfig.small(seed=11))
        assert_parity(
            artifacts.radio_traces, clock_groups=artifacts.clock_groups()
        )

    def test_mislabeled_record_attributed_to_owning_trace(self):
        """Reference sets key members by the *trace's* radio — the same
        attribution the merge engine uses — so a record whose radio_id
        field is mislabeled neither crashes the BFS nor smuggles a
        foreign radio into the offset graph."""
        frame = data_frame(seq=6)
        t0 = RadioTrace(0, 1, [record_for(frame, 9999, 1_000)])
        t1 = RadioTrace(1, 1, [record_for(frame, 1, 1_050)])
        result = assert_parity([t0, t1])
        assert set(result.offsets_us) == {0, 1}

    def test_empty_and_single(self):
        assert_parity([])
        assert_parity([RadioTrace(0, 1, [])])
        frame = data_frame(seq=3)
        assert_parity([RadioTrace(0, 1, [record_for(frame, 0, 100)])])

    def test_auto_widen_parity(self):
        """Late references force widening; incremental feed must match
        the reference implementation's from-scratch re-collection."""
        early = data_frame(seq=1)
        late = data_frame(seq=2)
        later = data_frame(seq=3)
        t0 = RadioTrace(0, 1, [
            record_for(early, 0, 0),
            record_for(late, 0, 3_000_000),
            record_for(later, 0, 6_500_000),
        ])
        t1 = RadioTrace(1, 1, [record_for(late, 1, 3_000_400)])
        t2 = RadioTrace(2, 1, [record_for(later, 2, 6_500_900)])
        result = assert_parity([t0, t1, t2])
        assert result.fully_synchronized
        assert result.window_us > 1_000_000

    def test_auto_widen_arrival_order_parity(self):
        """A widening round can sight a key at an earlier (trace, record)
        coordinate than the round that created it; the incremental shard
        must settle on the same globally-earliest arrival order — and
        therefore the same covering-family tie-break — as the reference
        implementation's from-scratch re-collection."""
        frame_a = data_frame(seq=1)
        frame_x = data_frame(seq=2)
        frame_y = data_frame(seq=3)
        # Round 1 (1 s window): trace0 contributes only A; trace1 creates
        # the X and Y sets (singletons).  Round 2 (2 s): trace0's X and Y
        # sightings arrive as duplicates from an *earlier* trace position.
        # X and Y then tie at size 2 — the tie-break must pick the same
        # set both ways.
        t0 = RadioTrace(0, 1, [
            record_for(frame_a, 0, 100),
            record_for(frame_x, 0, 2_000_000),
            record_for(frame_y, 0, 2_000_050),
        ])
        t1 = RadioTrace(1, 1, [
            record_for(frame_y, 1, 500),
            record_for(frame_x, 1, 700),
        ])
        result = assert_parity([t0, t1])
        assert result.fully_synchronized
        assert result.window_us > 1_000_000

    def test_auto_widen_partition_parity(self):
        """A partition that widening cannot heal must report identically."""
        island_a = [
            RadioTrace(0, 1, [record_for(data_frame(seq=1), 0, 1_000)]),
            RadioTrace(1, 1, [record_for(data_frame(seq=1), 1, 1_050)]),
        ]
        island_b = [
            RadioTrace(2, 6, [record_for(data_frame(seq=2), 2, 1_000, 6)]),
            RadioTrace(3, 6, [record_for(data_frame(seq=2), 3, 1_070, 6)]),
        ]
        result = assert_parity(island_a + island_b)
        assert set(result.unreachable) == {2, 3}

    def test_clock_group_bridge_parity(self):
        """Cross-channel bridging happens only in the global BFS phase."""
        island_a = [
            RadioTrace(0, 1, [record_for(data_frame(seq=1), 0, 1_000)]),
            RadioTrace(1, 1, [record_for(data_frame(seq=1), 1, 1_050)]),
        ]
        island_b = [
            RadioTrace(2, 6, [record_for(data_frame(seq=2), 2, 1_050, 6)]),
            RadioTrace(3, 6, [record_for(data_frame(seq=2), 3, 1_070, 6)]),
        ]
        result = assert_parity(island_a + island_b, clock_groups=[(1, 2)])
        assert result.fully_synchronized
        assert result.offsets_us[2] == pytest.approx(result.offsets_us[1])


class TestStrictPartition:
    def _islands(self):
        return [
            RadioTrace(0, 1, [record_for(data_frame(seq=1), 0, 1_000)]),
            RadioTrace(1, 1, [record_for(data_frame(seq=1), 1, 1_050)]),
            RadioTrace(2, 6, [record_for(data_frame(seq=2), 2, 1_000, 6)]),
            RadioTrace(3, 6, [record_for(data_frame(seq=2), 3, 1_070, 6)]),
        ]

    def test_serial_strict_raises(self):
        with pytest.raises(SyncPartitionError) as err:
            bootstrap_synchronization(self._islands(), strict=True)
        assert set(err.value.unreachable) == {2, 3}

    @pytest.mark.parametrize("workers", [0, 2])
    def test_sharded_strict_raises(self, workers):
        with pytest.raises(SyncPartitionError) as err:
            ShardedBootstrap(max_workers=workers).bootstrap(
                self._islands(), strict=True
            )
        assert set(err.value.unreachable) == {2, 3}

    def test_non_strict_reports(self):
        result = ShardedBootstrap(max_workers=0).bootstrap(self._islands())
        assert set(result.unreachable) == {2, 3}


class TestCoveringFamilyDeterminism:
    def test_tie_break_ignores_collection_order(self):
        """Equal-size reference sets must resolve by arrival order, not
        by the order the dict happened to be built in."""
        key_a = (60, 1, b"a" * 24)
        key_b = (60, 2, b"b" * 24)
        members_a = {0: 100, 1: 160}
        members_b = {0: 105, 1: 140}
        order = {key_a: (0, 3), key_b: (0, 7)}  # a arrived first
        forward = _select_covering_family(
            {key_a: members_a, key_b: members_b}, [0, 1], order
        )
        backward = _select_covering_family(
            {key_b: members_b, key_a: members_a}, [0, 1], order
        )
        assert forward == backward == [members_a]

    def test_union_is_merge_order_independent(self):
        shard_x = _BootstrapShard()
        shard_y = _BootstrapShard()
        frame = data_frame(seq=9)
        shard_x.feed(record_for(frame, 0, 50), 0, trace_pos=0, record_idx=0)
        shard_y.feed(
            record_for(frame, 5, 75, channel=6), 5, trace_pos=5, record_idx=2
        )
        ab = union_shard_payloads([shard_x.finish(), shard_y.finish()])
        ba = union_shard_payloads([shard_y.finish(), shard_x.finish()])
        assert ab[0] == ba[0]   # same member sets
        assert ab[1] == ba[1]   # same (earliest) arrival order
        assert ab[2] == ba[2]   # same seen count
        # Shard accumulators were not polluted by the union.
        assert list(shard_x.finish()[0].values()) == [{0: 50}]


class TestSingleReadIngest:
    def test_streaming_traces_prefix_only_for_bootstrap(self, tmp_path):
        """Bootstrap over streaming traces must decode only the window
        prefix (plus one record of lookahead per trace)."""
        from repro.jtrace.io import open_trace_streams, write_traces

        frames = {i: data_frame(seq=i) for i in range(1, 30)}
        traces = []
        for radio_id, offset in ((0, 0), (1, 2_000)):
            records = [
                record_for(frame, radio_id, 200_000 * i + offset)
                for i, frame in sorted(frames.items())
            ]
            traces.append(RadioTrace(radio_id, 1, records))
        write_traces(traces, tmp_path)
        # The record-at-a-time laziness this asserts is a scalar-decoder
        # property; the batch engine's granularity is one decoded batch
        # (covered by test_batched_ingest_decodes_by_batch below).
        streams = open_trace_streams(tmp_path, vectorized=False, decode_ahead=0)
        reference = bootstrap_synchronization(traces)
        result = ShardedBootstrap(max_workers=0).bootstrap(streams)
        assert result_fingerprint(result) == result_fingerprint(reference)
        for stream in streams:
            # 1 s window over 200 ms spacing: ~6 records + 1 lookahead,
            # far fewer than the 29 in the file.
            assert len(stream._buffer) < 10
        # Unification later drains the remainder of the same read.
        assert len(streams[0].records) == 29

    def test_batched_ingest_decodes_by_batch(self, tmp_path):
        """The batch engine's laziness granularity is one chunk-sized
        batch: a bootstrap prefix pull must not drain a multi-chunk file
        into the replay buffer."""
        from repro.jtrace import records as jrecords
        from repro.jtrace.io import open_trace_streams, write_traces

        if not jrecords.BATCH_DECODE_AVAILABLE:
            pytest.skip("numpy not available")
        frame = data_frame(seq=1)
        records = [
            record_for(frame, 0, 10_000 * i) for i in range(1, 4001)
        ]
        write_traces([RadioTrace(0, 1, records)], tmp_path)
        # Chunk small enough that the file spans many batches; decode
        # ahead adds at most `depth` batches of overshoot.
        stream = open_trace_streams(
            tmp_path, chunk_bytes=4096, decode_ahead=0
        )[0]
        stream.buffered_until(5_000_000)  # first ~500 records
        assert len(stream._buffer) < 1000
        assert len(stream.records) == 4000

    def test_streaming_pipeline_matches_memory_pipeline(self, tmp_path):
        from repro.core.pipeline import JigsawPipeline
        from repro.jtrace.io import open_trace_streams, write_traces
        from repro.sim import ScenarioConfig, run_scenario

        artifacts = run_scenario(ScenarioConfig.small(seed=13))
        write_traces(artifacts.radio_traces, tmp_path)
        groups = artifacts.clock_groups()
        mem = JigsawPipeline().run(
            artifacts.radio_traces, clock_groups=groups
        )
        streamed = JigsawPipeline().run(
            open_trace_streams(tmp_path), clock_groups=groups
        )
        assert streamed.bootstrap.offsets_us == mem.bootstrap.offsets_us
        assert streamed.unification.stats == mem.unification.stats
        assert [
            (j.timestamp_us, j.channel, j.fcs, j.n_instances)
            for j in streamed.jframes
        ] == [
            (j.timestamp_us, j.channel, j.fcs, j.n_instances)
            for j in mem.jframes
        ]

    def test_unsorted_stream_downgrades_to_sorted_drain(self):
        """Disorder detected during the prefix read falls back to a full
        drain + sort, so the window gate stays correct."""
        frame = data_frame(seq=4)
        records = [
            record_for(frame, 0, ts) for ts in (500, 100, 900, 300)
        ]
        stream = StreamingRadioTrace(0, 1, iter(records))
        buffered, hi = stream.buffered_until(600)
        assert [r.timestamp_us for r in buffered[:hi]] == [100, 300, 500]
        assert [r.timestamp_us for r in stream.records] == [100, 300, 500, 900]

    def test_disorder_after_prefix_consumption_raises(self):
        """A record that sorts into a window the bootstrap already
        examined cannot be silently fixed — it must raise, both when a
        later widening round trips over it and at drain time."""
        frame = data_frame(seq=5)
        # Ordered through the first window, then a record from the past.
        records = [
            record_for(frame, 0, ts)
            for ts in (100, 900, 2_000_000, 400, 3_000_000)
        ]
        stream = StreamingRadioTrace(0, 1, iter(records))
        buffered, hi = stream.buffered_until(1_000)
        assert hi == 2
        with pytest.raises(ValueError, match="local-time order"):
            stream.records
        # Widening (a second prefix request past the disorder) also raises.
        stream2 = StreamingRadioTrace(0, 1, iter(records))
        stream2.buffered_until(1_000)
        with pytest.raises(ValueError, match="local-time order"):
            stream2.buffered_until(2_500_000)

    def test_pipeline_attributes_stay_live(self):
        """Mutating the pipeline's bootstrap knobs between runs must take
        effect (the coordinator is derived per run, not frozen)."""
        from repro.core.pipeline import JigsawPipeline

        early = data_frame(seq=1)
        late = data_frame(seq=2)
        t0 = RadioTrace(0, 1, [
            record_for(early, 0, 0),
            record_for(late, 0, 3_000_000),
        ])
        t1 = RadioTrace(1, 1, [record_for(late, 1, 3_000_400)])
        pipeline = JigsawPipeline(auto_widen_bootstrap=False)
        assert not pipeline.run([t0, t1]).bootstrap.fully_synchronized
        pipeline.auto_widen_bootstrap = True
        report = pipeline.run([t0, t1])
        assert report.bootstrap.fully_synchronized
        assert report.bootstrap.window_us > 1_000_000


class TestWorkerPolicy:
    def test_resolves_like_sharded_unifier(self):
        from repro.core.unify.sharded import ShardedUnifier

        for max_workers, n_shards in [
            (None, 1), (None, 3), (0, 3), (1, 3), (2, 3), (8, 3), (2, 1),
        ]:
            assert ShardedUnifier(
                max_workers=max_workers
            )._worker_count(n_shards) == resolve_pool_workers(
                max_workers, n_shards
            )

    def test_serial_when_single_shard(self):
        assert resolve_pool_workers(None, 1) == 1
        assert resolve_pool_workers(16, 1) == 1

    def test_explicit_pool_capped_by_cpu_count(self):
        import os

        # An explicit request is capped by the machine's cores, never
        # demoted to serial (floor of two) and never wider than shards.
        cap = max(2, os.cpu_count() or 1)
        assert resolve_pool_workers(16, 4) == min(16, cap, 4)
        assert resolve_pool_workers(2, 4) == 2
        assert resolve_pool_workers(10_000, 3) == min(10_000, cap, 3)
