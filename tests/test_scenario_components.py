"""The componentized scenario config: routing, validation, composition.

The heart of the refactor is the composition property: every optional
behavior draws from its own ``SeedSequence`` spawn-key stream, so
reconfiguring one component cannot perturb the randomness any other
component consumes.  These tests hold that property observably — same
seed, unrelated component changed, untouched substrates identical.
"""

import numpy as np
import pytest

from repro.sim import (
    ClientBehaviorConfig,
    FleetConfig,
    GeometryConfig,
    ImpairmentConfig,
    ScenarioConfig,
    ScenarioStreams,
    WorkloadConfig,
    generate_flows,
    run_scenario,
)


class TestComponentRouting:
    def test_flat_kwargs_route_into_components(self):
        config = ScenarioConfig(
            floors=2, n_clients=9, microwave=True, web_weight=0.9,
            client_rescan_interval_us=123,
        )
        assert config.geometry.floors == 2
        assert config.fleet.n_clients == 9
        assert config.impairments.microwave is True
        assert config.workload.web_weight == 0.9
        assert config.behavior.rescan_interval_us == 123
        # ... and read back through the legacy flat properties.
        assert config.floors == 2 and config.n_clients == 9
        assert config.microwave and config.client_rescan_interval_us == 123

    def test_component_kwargs_accepted_whole(self):
        config = ScenarioConfig(
            geometry=GeometryConfig(floors=1, aps_per_floor=1, n_pods=2),
            fleet=FleetConfig(n_clients=3),
            behavior=ClientBehaviorConfig(probe_burst=2),
            impairments=ImpairmentConfig(wired_loss_rate=0.0),
            workload=WorkloadConfig(flash_crowd=True),
        )
        assert config.n_aps == 1 and config.n_clients == 3
        assert config.behavior.probe_burst == 2
        assert config.workload.flash_crowd

    def test_flat_override_wins_over_component(self):
        config = ScenarioConfig(
            geometry=GeometryConfig(floors=4), floors=2
        )
        assert config.floors == 2

    def test_named_scale_respects_explicit_component(self):
        geometry = GeometryConfig(floors=3, aps_per_floor=1, n_pods=2)
        config = ScenarioConfig.tiny(geometry=geometry)
        assert config.floors == 3  # not reset to the tiny default of 1
        assert config.n_clients == 4  # other scale defaults still apply

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            ScenarioConfig(not_a_knob=1)

    def test_with_overrides(self):
        base = ScenarioConfig.small(seed=5)
        changed = base.with_overrides(
            workload=WorkloadConfig(flash_crowd=True), n_clients=3
        )
        assert changed.workload.flash_crowd and changed.n_clients == 3
        assert changed.seed == 5 and changed.floors == base.floors


class TestComponentValidation:
    def test_component_validation_surfaces_from_config(self):
        with pytest.raises(ValueError):
            ScenarioConfig(roam_fraction=1.5)
        with pytest.raises(ValueError):
            ScenarioConfig(wired_loss_rate=1.0)
        with pytest.raises(ValueError):
            ScenarioConfig(placement="beach")

    def test_roaming_requires_interval(self):
        with pytest.raises(ValueError, match="roam_interval_us"):
            ClientBehaviorConfig(roam_fraction=0.5)

    def test_workload_weights_must_be_positive(self):
        """The satellite: negative weights and zero-sum mixes fail loudly
        at construction instead of misbehaving downstream."""
        with pytest.raises(ValueError, match="non-negative"):
            WorkloadConfig(web_weight=-0.1)
        with pytest.raises(ValueError, match="sum to a positive value"):
            WorkloadConfig(web_weight=0, ssh_weight=0, scp_weight=0)

    def test_flash_center_must_be_a_run_fraction(self):
        with pytest.raises(ValueError, match="flash_center"):
            WorkloadConfig(flash_crowd=True, flash_center=5.0)
        # Only meaningful with the wave enabled.
        assert WorkloadConfig(flash_center=5.0).flash_peak == 1.0

    def test_workload_weights_normalized_explicitly(self):
        weights = WorkloadConfig(
            web_weight=2.0, ssh_weight=1.0, scp_weight=1.0
        ).archetype_weights()
        assert weights == (0.5, 0.25, 0.25)
        assert sum(weights) == pytest.approx(1.0)


class TestScenarioStreams:
    def test_streams_are_reproducible_and_distinct(self):
        streams = ScenarioStreams(11)
        a = streams.entity("roam", 3).integers(0, 1 << 30, 8)
        b = streams.entity("roam", 3).integers(0, 1 << 30, 8)
        other = streams.entity("roam", 4).integers(0, 1 << 30, 8)
        component = streams.component("arrival").integers(0, 1 << 30, 8)
        assert list(a) == list(b)
        assert list(a) != list(other)
        assert list(a) != list(component)

    def test_streams_match_seedsequence_spawn(self):
        """The spawn-key construction is exactly SeedSequence.spawn."""
        streams = ScenarioStreams(7)
        root = np.random.SeedSequence(7)
        # component key 7 == the 8th child of the root spawn.
        spawned = np.random.default_rng(root.spawn(8)[7])
        assert list(streams.component("roam").integers(0, 1 << 30, 4)) == list(
            spawned.integers(0, 1 << 30, 4)
        )


def _clock_offsets(artifacts):
    return [
        clock.offset_us for pod in artifacts.pods for clock in pod.clocks
    ]


def _positions(placements):
    return [p.position for p in placements]


class TestCompositionStability:
    """Reconfiguring one component leaves the others' randomness intact."""

    def test_same_seed_identical_traces(self):
        a = run_scenario(ScenarioConfig.tiny(seed=21))
        b = run_scenario(ScenarioConfig.tiny(seed=21))
        assert [r for t in a.radio_traces for r in t] == [
            r for t in b.radio_traces for r in t
        ]

    def test_workload_change_leaves_world_untouched(self):
        base = run_scenario(ScenarioConfig.tiny(seed=8))
        tweaked = run_scenario(
            ScenarioConfig.tiny(seed=8, web_weight=0.1, scp_weight=0.8)
        )
        assert _positions(base.station_placements) == _positions(
            tweaked.station_placements
        )
        assert _positions(base.pod_placements) == _positions(
            tweaked.pod_placements
        )
        assert _clock_offsets(base) == _clock_offsets(tweaked)
        assert [ap.mac for ap in base.aps] == [ap.mac for ap in tweaked.aps]

    def test_enabling_roaming_leaves_flows_and_world_untouched(self):
        base_config = ScenarioConfig.tiny(seed=9)
        roam_config = ScenarioConfig.tiny(
            seed=9, roam_fraction=0.5, roam_interval_us=120_000
        )
        assert generate_flows(
            base_config, np.random.default_rng(3)
        ) == generate_flows(roam_config, np.random.default_rng(3))
        base = run_scenario(base_config)
        roamed = run_scenario(roam_config)
        assert base.flows == roamed.flows
        assert _positions(base.station_placements) == _positions(
            roamed.station_placements
        )
        assert _clock_offsets(base) == _clock_offsets(roamed)
        assert roamed.roam_events  # the enabled component actually acted

    def test_workload_change_leaves_roam_schedule_untouched(self):
        """Even a component enabled *on top* keeps its own stream: tweak
        the workload and the roam schedule does not move."""
        a = run_scenario(
            ScenarioConfig.tiny(
                seed=10, roam_fraction=0.5, roam_interval_us=120_000
            )
        )
        b = run_scenario(
            ScenarioConfig.tiny(
                seed=10,
                roam_fraction=0.5,
                roam_interval_us=120_000,
                web_weight=0.05,
                scp_weight=0.9,
            )
        )
        assert [
            (e.time_us, e.station_index, e.position) for e in a.roam_events
        ] == [(e.time_us, e.station_index, e.position) for e in b.roam_events]

    def test_arrival_window_only_moves_start_times(self):
        base = run_scenario(ScenarioConfig.tiny(seed=12))
        waved = run_scenario(
            ScenarioConfig.tiny(seed=12, start_window_us=100_000)
        )
        assert base.flows == waved.flows
        assert _positions(base.station_placements) == _positions(
            waved.station_placements
        )
        assert _clock_offsets(base) == _clock_offsets(waved)


class TestRunCacheFingerprint:
    """The satellite: family name and schema version key the run cache."""

    def test_family_distinguishes_cache_entries(self):
        from repro.experiments import common

        common.clear_cache()
        try:
            plain = common.get_run(
                "fp-test", lambda: ScenarioConfig.tiny(seed=2), seed=2
            )
            familied = common.get_run(
                "fp-test",
                lambda: ScenarioConfig.tiny(seed=2),
                seed=2,
                family="roaming",
            )
            again = common.get_run(
                "fp-test",
                lambda: ScenarioConfig.tiny(seed=2),
                seed=2,
                family="roaming",
            )
        finally:
            common.clear_cache()
        assert plain is not familied
        assert again is familied

    def test_fingerprint_carries_schema_version_and_family(self):
        from repro.experiments.common import _config_fingerprint
        from repro.sim import SCENARIO_SCHEMA_VERSION

        fp = _config_fingerprint(ScenarioConfig.tiny(), "scanning")
        assert f"schema-v{SCENARIO_SCHEMA_VERSION}:" in fp
        assert "family=scanning:" in fp
        assert _config_fingerprint(ScenarioConfig.tiny(), None) != fp
