# Developer entry points.  Everything assumes the in-tree layout
# (PYTHONPATH=src); `make lint` is the same gate CI's static-analysis
# job runs, minus --require-all so missing optional tools skip locally.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint lint-strict bench

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m repro.devtools.check

lint-strict:
	$(PYTHON) -m repro.devtools.check --require-all

bench:
	$(PYTHON) -m pytest -q benchmarks/bench_perf_unifier.py
