# Developer entry points.  Everything assumes the in-tree layout
# (PYTHONPATH=src); `make lint` is the same gate CI's static-analysis
# job runs, minus --require-all so missing optional tools skip locally.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint lint-strict bench bench-smoke bench-full

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m repro.devtools.check

lint-strict:
	$(PYTHON) -m repro.devtools.check --require-all

bench:
	$(PYTHON) -m pytest -q benchmarks/bench_perf_unifier.py

# The exact sequence CI's bench-smoke job runs: snapshot the committed
# trajectory as the regression baseline, re-measure (the bench suites
# rewrite BENCH_merge.json in place), then gate the fresh numbers
# against the snapshot.  Keeping local and CI invocations identical
# means a perf number reported from either is produced the same way.
bench-smoke:
	cp BENCH_merge.json BENCH_baseline.json
	$(PYTHON) -m pytest -q benchmarks/bench_perf_unifier.py
	$(PYTHON) -m pytest -q benchmarks/bench_scenarios.py
	$(PYTHON) benchmarks/check_regression.py \
		--baseline BENCH_baseline.json --current BENCH_merge.json

# The full-scale lane CI's pool-bench job runs on a multi-core runner:
# full-scale scenario families plus the 512/1024/1536-radio campus
# sweep.  Expensive — the 12-building campus alone simulates for a few
# minutes — so it is not part of bench-smoke.
bench-full:
	cp BENCH_merge.json BENCH_baseline.json
	$(PYTHON) -m pytest -q benchmarks/bench_perf_unifier.py --scale full
	$(PYTHON) -m pytest -q benchmarks/bench_scenarios.py --scale full
	$(PYTHON) benchmarks/check_regression.py \
		--baseline BENCH_baseline.json --current BENCH_merge.json
