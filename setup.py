from setuptools import find_packages, setup

setup(
    name="repro-jigsaw",
    version="1.0.0",
    description=(
        "Reproduction of Jigsaw (SIGCOMM 2006): merged 802.11 monitor "
        "traces, microsecond clock unification, and link/transport "
        "conversation reconstruction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={
        # PEP 561: the package ships inline type annotations.
        "repro": ["py.typed"],
        "repro.devtools": ["lint_baseline.json"],
    },
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro-lint = repro.devtools.check:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Typing :: Typed",
    ],
)
