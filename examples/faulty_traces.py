"""Fault tolerance end to end: damaged traces, dying workers, honest health.

A 24-hour production capture never comes back pristine: NFS writes get
cut short, monitor disks corrupt records, radios reboot mid-capture, and
on the analysis side a pool worker can be OOM-killed halfway through the
merge.  This example injects all of that on purpose and shows the
pipeline completing anyway, with ``report.health`` itemizing exactly
what was lost:

1. capture a scenario and write its traces through the sim fault
   harness (:func:`repro.sim.write_faulty_traces`) — random header
   corruption, one file truncated mid-record, one radio blacked out;
2. show the strict reader refusing the damaged files (the historical
   behavior), then reopen with ``policy="skip"`` — the tolerant decoder
   resynchronizes at the next valid record boundary and counts what it
   skipped;
3. kill a unification pool worker on its first attempt — the shard is
   retried in a fresh pool and the run completes;
4. print the :class:`~repro.core.faults.HealthReport` next to the
   injector's ground-truth :class:`~repro.sim.faults.FaultPlan`.

Run with::

    python examples/faulty_traces.py [--building]

``--building`` uses the building-scale scenario (~190 radios, a few
minutes); the default small scale finishes in seconds.
"""

import os
import sys
import tempfile
import time
from pathlib import Path

from repro.core import JigsawPipeline
from repro.core.faults import RetryPolicy
from repro.core.sync import sharded as sync_sharded
from repro.core.unify import sharded as unify_sharded
from repro.core.unify.sharded import ShardedUnifier
from repro.jtrace import open_trace_streams, read_traces
from repro.sim import (
    FaultConfig,
    ScenarioConfig,
    run_scenario,
    write_faulty_traces,
)

#: Flag file the crashing worker uses to die exactly once (children of a
#: forked pool inherit the module state, so the retry succeeds).  The
#: kill is armed for both pool stages — bootstrap collection and the
#: shard merge — because either can be the one with multiple shards:
#: bootstrap shards by each radio's *home* channel, while the merge
#: unions channels that interact through scanning clients' records (at
#: building scale that collapses the merge to one serial shard).
_CRASH_FLAG: str = ""
_REAL_UNIFY_SHARD = unify_sharded._unify_shard
_REAL_COLLECT = sync_sharded._collect_shard_prefixes


def _die_once(stage):
    if _CRASH_FLAG and not os.path.exists(_CRASH_FLAG):
        open(_CRASH_FLAG, "w").close()
        print(f"  [worker] simulated OOM kill mid-{stage}: os._exit(1)")
        os._exit(1)


def _crash_once_unify_shard(unifier, traces, bootstrap):
    _die_once("merge")
    return _REAL_UNIFY_SHARD(unifier, traces, bootstrap)


def _crash_once_collect(prefixes):
    _die_once("bootstrap")
    return _REAL_COLLECT(prefixes)


def main() -> None:
    building = "--building" in sys.argv
    scale = ScenarioConfig.building if building else ScenarioConfig.small
    faults = FaultConfig(
        corrupt_rate=0.002,      # ~1 record in 500 gets its header smashed
        truncate_radios=1,       # one file stops mid-record
        blackout_radios=1,       # one radio goes dark for 20% of the run
    )
    config = scale(seed=7, faults=faults)

    print(f"capturing {'building' if building else 'small'} scenario ...")
    artifacts = run_scenario(config)
    traces = artifacts.radio_traces
    clock_groups = artifacts.clock_groups()
    total = sum(len(t) for t in traces)
    print(f"  {len(traces)} radios, {total:,} records captured")

    out = Path(tempfile.mkdtemp(prefix="jigsaw-faulty-"))
    plan = write_faulty_traces(traces, out, config)
    print(f"\ninjected faults while writing -> {out}")
    print(f"  ground truth: {plan.summary()}")

    # The strict reader (the historical default) refuses damaged files.
    try:
        read_traces(out)
    except ValueError as exc:
        print(f"\nstrict read fails as it should:\n  ValueError: {exc}")

    # Tolerant ingest + a worker kill during the first pooled stage.
    global _CRASH_FLAG
    _CRASH_FLAG = str(out / "worker_killed.flag")
    unify_sharded._unify_shard = _crash_once_unify_shard
    sync_sharded._collect_shard_prefixes = _crash_once_collect
    try:
        streams = open_trace_streams(out, policy="skip")
        unifier = ShardedUnifier(
            max_workers=4,
            retry_policy=RetryPolicy(max_retries=2, backoff_base_s=0.05),
        )
        started = time.perf_counter()
        report = JigsawPipeline(unifier=unifier, bootstrap_workers=4).run(
            streams, clock_groups=clock_groups
        )
        elapsed = time.perf_counter() - started
    finally:
        unify_sharded._unify_shard = _REAL_UNIFY_SHARD
        sync_sharded._collect_shard_prefixes = _REAL_COLLECT
        _CRASH_FLAG = ""

    print(f"\npipeline completed in {elapsed:.1f}s despite everything:")
    print(report.summary())

    health = report.health
    n_corrupt = sum(len(v) for v in plan.corrupted_records.values())
    print("\nhealth vs ground truth:")
    print(f"  corrupted records injected: {n_corrupt:4d}   "
          f"resync events counted: {health.ingest.records_skipped}")
    print(f"  truncated files injected:   {len(plan.truncated):4d}   "
          f"truncated tails observed: {health.ingest.truncated_tails + health.ingest.stream_errors}")
    print(f"  blackout holes injected:    {len(plan.blackouts):4d}   "
          f"(records silently absent — invisible to decode, visible as a "
          f"coverage gap)")
    crashes = (health.bootstrap_shards.worker_crashes
               + health.unify_shards.worker_crashes)
    retries = (health.bootstrap_shards.pool_retries
               + health.unify_shards.pool_retries)
    print(f"  workers killed:                1   "
          f"pool crashes survived: {crashes} (retries: {retries})")
    assert crashes >= 1, "the killed worker must be visible in health"
    assert health.degraded, "a damaged run must report degraded health"
    print("\nreport.health.degraded =", health.degraded)


if __name__ == "__main__":
    main()
