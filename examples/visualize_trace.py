"""Figure 2 for your own trace: the synchronized-timeline visualization.

Renders the busiest few milliseconds of a small scenario as the paper's
Figure 2 view — radios on the y-axis, universal time on the x-axis, each
reception drawn where synchronization placed it.

Run with::

    python examples/visualize_trace.py
"""

from repro.core import JigsawPipeline
from repro.core.analysis.visualize import busiest_window, render_timeline
from repro.sim import ScenarioConfig, run_scenario


def main() -> None:
    artifacts = run_scenario(ScenarioConfig.small(seed=5))
    report = JigsawPipeline().run(
        artifacts.radio_traces, clock_groups=artifacts.clock_groups()
    )
    start, end = busiest_window(report.jframes, width_us=4_000)
    print("the busiest 4 ms of the trace, as Jigsaw synchronized it:\n")
    print(render_timeline(report.jframes, start, end, columns=96))
    print(
        "\neach column where many radios share a marker is one physical\n"
        "transmission heard across the building — the simultaneity that\n"
        "trace merging exploits (paper Figure 2)."
    )


if __name__ == "__main__":
    main()
