"""The paper's motivating question: "Why is the network slow?"

The conclusion of the paper frames Jigsaw as a building block for
answering exactly this.  This example plays network operator: it takes a
building trace, finds the clients with the worst TCP behaviour, and uses
the global cross-layer viewpoint to attribute each one's trouble to a
concrete cause — co-channel interference, broadband (microwave) noise,
over-conservative 802.11g protection, or plain wired-path loss.

Run with::

    python examples/why_is_the_network_slow.py
"""

from collections import defaultdict

from repro.core.analysis import (
    analyze_protection,
    analyze_tcp_loss,
    estimate_interference,
    identify_stations,
)
from repro.core.pipeline import JigsawPipeline
from repro.core.transport.inference import LossCause
from repro.net.packets import format_ip
from repro.sim import ScenarioConfig, run_scenario


def main() -> None:
    config = ScenarioConfig.building(seed=11, duration_us=6_000_000)
    print("capturing and reconstructing...")
    artifacts = run_scenario(config)
    report = JigsawPipeline().run(
        artifacts.radio_traces, clock_groups=artifacts.clock_groups()
    )
    clients, aps = identify_stations(report)

    # Rank flows by loss rate.
    loss = analyze_tcp_loss(report)
    worst = sorted(loss.flows, key=lambda f: f.loss_rate, reverse=True)[:8]

    # Cross-layer context: interference estimates per link and the set of
    # overprotective APs.
    interference = estimate_interference(report, min_packets=20)
    pair_rate = {
        (p.sender, p.receiver): p.interference_loss_rate
        for p in interference.pairs
    }
    protection = analyze_protection(
        report,
        config.duration_us,
        bin_us=config.duration_us // 24,
        practical_timeout_us=2 * config.client_rescan_interval_us,
    )
    overprotective = set()
    for time_bin in protection.bins:
        overprotective |= time_bin.overprotective_aps

    print(f"\nworst {len(worst)} flows by TCP loss rate:")
    for row in worst:
        flow = row.flow
        causes = defaultdict(int)
        for event in flow.loss_events:
            causes[event.cause] += 1
        # Which stations carried this flow on the air?
        stations = {
            obs.exchange.transmitter
            for obs in flow.observations
            if obs.exchange.transmitter is not None
        }
        client_macs = stations & clients
        ap_macs = stations & aps
        diagnosis = []
        if causes[LossCause.WIRELESS] > causes[LossCause.WIRED]:
            diagnosis.append("losses concentrated on the wireless hop")
            for ap in ap_macs:
                for client in client_macs:
                    rate = pair_rate.get((ap, client)) or pair_rate.get(
                        (client, ap)
                    )
                    if rate and rate > 0.05:
                        diagnosis.append(
                            f"co-channel interference on {ap}<->{client} "
                            f"(X={rate:.2f})"
                        )
        elif causes[LossCause.WIRED] > 0:
            diagnosis.append("losses beyond the AP (wired path)")
        if ap_macs & overprotective:
            diagnosis.append(
                "AP is overprotective (needless CTS-to-self overhead)"
            )
        if not diagnosis:
            diagnosis.append("no dominant cause; likely transient contention")
        print(
            f"  {format_ip(flow.key.ip_a)}:{flow.key.port_a} <-> "
            f"{format_ip(flow.key.ip_b)}:{flow.key.port_b}  "
            f"loss={row.loss_rate:.3f} "
            f"(wireless={row.wireless_losses}, wired={row.wired_losses})"
        )
        for line in diagnosis:
            print(f"      -> {line}")


if __name__ == "__main__":
    main()
