"""Streaming analysis passes: every figure, one pipeline pass, bounded memory.

The classic workflow materializes a full ``JigsawReport`` — every jframe,
attempt and exchange — and then walks those lists once per analysis.
This example taps the pipeline's one-pass loop directly instead: each
analysis registers as a :class:`~repro.core.passes.PipelinePass`, the
report's per-layer lists are never built (``materialize=False``), and
the results come back on ``report.passes``.

Run with::

    python examples/streaming_analyses.py
"""

import gc
import tracemalloc

from repro.core import JigsawPipeline
from repro.core.analysis import (
    ActivityPass,
    BroadcastAirtimePass,
    DispersionPass,
    InterferencePass,
    ProtectionPass,
    StationTracker,
    SummaryPass,
    TcpLossPass,
    WiredCoveragePass,
)
from repro.sim import ScenarioConfig, run_scenario


def main() -> None:
    config = ScenarioConfig.small(seed=7, fraction_11b_clients=0.25)
    duration = config.duration_us
    print(f"simulating {duration / 1e6:.0f}s of 802.11b/g activity...")
    artifacts = run_scenario(config)

    # Every Section 6/7 analysis, registered on one streaming run.  With
    # materialize=False the pipeline never retains the jframe / attempt /
    # exchange lists — analyses fold over the streams as they flow.
    bin_us = duration // 10
    # Passes that need the behavioural client/AP classification share one
    # tracker — the classification work happens once per jframe.
    tracker = StationTracker()
    passes = [
        SummaryPass(duration, tracker=tracker),
        DispersionPass(),
        ActivityPass(duration, bin_us=bin_us, tracker=tracker),
        BroadcastAirtimePass(duration),
        ProtectionPass(
            duration,
            bin_us=bin_us,
            practical_timeout_us=bin_us,
            tracker=tracker,
        ),
        InterferencePass(min_packets=20, tracker=tracker),
        TcpLossPass(),
        WiredCoveragePass(artifacts.wired_trace),
    ]

    gc.collect()
    tracemalloc.start()
    report = JigsawPipeline().run_streaming(
        artifacts.radio_traces,
        passes,
        clock_groups=artifacts.clock_groups(),
    )
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    print(f"\nreport.materialized = {report.materialized} "
          f"(jframe list length: {len(report.jframes)})")
    print(f"pipeline peak heap: {peak / 1e6:.1f} MB\n")

    print("=== Table 1 (SummaryPass) ===")
    print(report.passes["summary"].format_table())

    cdf = report.passes["dispersion"]
    print("\n=== Figure 4 (DispersionPass) ===")
    print(f"p90 dispersion {cdf.p90_us:.1f} us, p99 {cdf.p99_us:.1f} us "
          "(paper: <10 us / <20 us)")

    timeline = report.passes["activity"]
    print("\n=== Figure 8 (ActivityPass) ===")
    print(f"peak active clients: {timeline.peak_clients()}")
    for channel, share in report.passes["broadcast_airtime"].items():
        print(f"  ch{channel} broadcast airtime: {100 * share:.1f}%")

    print("\n=== Figure 9 (InterferencePass) ===")
    interference = report.passes["interference"]
    print(f"scored pairs: {interference.n_pairs}, "
          f"interfered: {interference.fraction_pairs_interfered():.2f}")

    print("\n=== Figure 10 (ProtectionPass) ===")
    protection = report.passes["protection"]
    print(f"overprotective APs: {protection.total_overprotective_aps()}, "
          f"peak affected 11g fraction: "
          f"{protection.peak_affected_fraction():.2f}")

    print("\n=== Figure 11 (TcpLossPass) ===")
    print(report.passes["tcp_loss"].format_table())

    print("\n=== Figure 6 (WiredCoveragePass) ===")
    print(f"overall coverage: {report.passes['wired_coverage'].overall():.3f}")


if __name__ == "__main__":
    main()
