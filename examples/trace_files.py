"""The offline workflow: jigdump-style trace files on disk.

The real Jigsaw monitors stream compressed per-radio trace files over NFS
(Section 3.3).  This example captures a scenario, writes every radio's
trace to disk in the jtrace format (gzip data + JSON index sidecar), reads
them back in a fresh process-like step, and runs the pipeline purely from
files — the workflow of analyzing yesterday's capture.

It then re-runs through :func:`repro.jtrace.open_trace_streams`, the
replay-aware readers that decode each file exactly once: the bootstrap
prepass pulls only its examination window before unification replays the
buffered prefix and drains the rest of the same read.  Offsets and
jframes are identical; only the time-to-first-jframe changes.

Run with::

    python examples/trace_files.py [output_dir]
"""

import sys
import tempfile
import time
from pathlib import Path

from repro.core import JigsawPipeline
from repro.jtrace import open_trace_streams, read_traces, write_traces
from repro.sim import ScenarioConfig, run_scenario


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="jigsaw-traces-")
    )

    # Capture.
    config = ScenarioConfig.small(seed=21)
    artifacts = run_scenario(config)
    clock_groups = artifacts.clock_groups()

    # Write per-radio trace files (the monitors' NFS output).
    paths = write_traces(artifacts.radio_traces, out)
    total_bytes = sum(p.stat().st_size for p in paths)
    records = sum(len(t) for t in artifacts.radio_traces)
    print(
        f"wrote {len(paths)} radio traces, {records:,} records, "
        f"{total_bytes / 1024:.0f} KiB compressed -> {out}"
    )

    # A later analysis session: read the files back and merge.
    traces = read_traces(out)
    assert sum(len(t) for t in traces) == records
    report = JigsawPipeline().run(traces, clock_groups=clock_groups)
    print("\nreconstruction from files:")
    print(report.summary())

    # Same reconstruction, single-read: the bootstrap prepass decodes
    # only each trace's examination window, then the merge replays the
    # buffered prefix and continues the same underlying read.
    started = time.perf_counter()
    streams = open_trace_streams(out)
    streamed = JigsawPipeline().run(streams, clock_groups=clock_groups)
    elapsed = time.perf_counter() - started
    assert streamed.bootstrap.offsets_us == report.bootstrap.offsets_us
    assert streamed.unification.stats == report.unification.stats
    print(
        f"\nsingle-read ingest: identical reconstruction, {elapsed:.2f}s "
        "(each file decoded exactly once)"
    )


if __name__ == "__main__":
    main()
