"""The offline workflow: jigdump-style trace files on disk.

The real Jigsaw monitors stream compressed per-radio trace files over NFS
(Section 3.3).  This example captures a scenario, writes every radio's
trace to disk in the jtrace format (gzip data + JSON index sidecar), reads
them back in a fresh process-like step, and runs the pipeline purely from
files — the workflow of analyzing yesterday's capture.

Run with::

    python examples/trace_files.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro.core import JigsawPipeline
from repro.jtrace import read_traces, write_traces
from repro.sim import ScenarioConfig, run_scenario


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="jigsaw-traces-")
    )

    # Capture.
    config = ScenarioConfig.small(seed=21)
    artifacts = run_scenario(config)
    clock_groups = artifacts.clock_groups()

    # Write per-radio trace files (the monitors' NFS output).
    paths = write_traces(artifacts.radio_traces, out)
    total_bytes = sum(p.stat().st_size for p in paths)
    records = sum(len(t) for t in artifacts.radio_traces)
    print(
        f"wrote {len(paths)} radio traces, {records:,} records, "
        f"{total_bytes / 1024:.0f} KiB compressed -> {out}"
    )

    # A later analysis session: read the files back and merge.
    traces = read_traces(out)
    assert sum(len(t) for t in traces) == records
    report = JigsawPipeline().run(traces, clock_groups=clock_groups)
    print("\nreconstruction from files:")
    print(report.summary())


if __name__ == "__main__":
    main()
