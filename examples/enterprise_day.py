"""A day in an enterprise WLAN: every analysis from the paper in one run.

Simulates the paper's deployment shape (four floors, ~39 pods / 156 monitor
radios, 35 APs, 60 clients with a diurnal workload, microwave interference,
an uncovered administrative wing) and reproduces Sections 6 and 7:
coverage, activity, interference, protection mode, and TCP loss.

All analyses run as streaming passes registered on a single
``materialize=False`` pipeline run — the building's jframe/attempt/
exchange lists are never held in memory, which is how the same code
scales past building-sized traces.

Run with::

    python examples/enterprise_day.py        # ~2-3 minutes
"""

from repro.core.analysis import (
    ActivityPass,
    BroadcastAirtimePass,
    DispersionPass,
    InterferencePass,
    ProtectionPass,
    StationTracker,
    SummaryPass,
    TcpLossPass,
    WiredCoveragePass,
)
from repro.core.pipeline import JigsawPipeline
from repro.sim import ScenarioConfig, run_scenario


def main() -> None:
    config = ScenarioConfig.building(seed=7, duration_us=6_000_000)
    duration = config.duration_us
    bin_us = duration // 24
    print("simulating a (compressed) day in the building...")
    artifacts = run_scenario(config)
    print("reconstructing with Jigsaw (streaming passes, no report lists)...")
    tracker = StationTracker()  # one shared client/AP classification
    report = JigsawPipeline().run_streaming(
        artifacts.radio_traces,
        [
            SummaryPass(duration, tracker=tracker),
            DispersionPass(),
            WiredCoveragePass(artifacts.wired_trace),
            ActivityPass(duration, bin_us=bin_us, tracker=tracker),
            BroadcastAirtimePass(duration),
            InterferencePass(min_packets=25, tracker=tracker),
            ProtectionPass(
                duration,
                bin_us=bin_us,
                practical_timeout_us=max(
                    bin_us, 2 * config.client_rescan_interval_us
                ),
                tracker=tracker,
            ),
            TcpLossPass(),
        ],
        clock_groups=artifacts.clock_groups(),
    )

    print("\n=== Table 1: trace summary ===")
    print(report.passes["summary"].format_table())

    print("\n=== Figure 4: synchronization quality ===")
    print(report.passes["dispersion"].format_table())

    print("\n=== Figure 6: coverage vs the wired trace ===")
    print(report.passes["wired_coverage"].format_table())

    print("\n=== Figure 8: activity (compressed day, one bin per 'hour') ===")
    print(report.passes["activity"].format_table(max_rows=12))
    print("broadcast airtime share:", {
        f"ch{ch}": f"{100 * share:.1f}%"
        for ch, share in report.passes["broadcast_airtime"].items()
    })

    print("\n=== Figure 9: co-channel interference ===")
    print(report.passes["interference"].format_table())

    print("\n=== Figure 10: 802.11g protection ===")
    print(report.passes["protection"].format_table(max_rows=8))

    print("\n=== Figure 11: TCP loss decomposition ===")
    print(report.passes["tcp_loss"].format_table())


if __name__ == "__main__":
    main()
