"""A day in an enterprise WLAN: every analysis from the paper in one run.

Simulates the paper's deployment shape (four floors, ~39 pods / 156 monitor
radios, 35 APs, 60 clients with a diurnal workload, microwave interference,
an uncovered administrative wing) and reproduces Sections 6 and 7:
coverage, activity, interference, protection mode, and TCP loss.

Run with::

    python examples/enterprise_day.py        # ~2-3 minutes
"""

from repro.core.analysis import (
    activity_timeline,
    analyze_protection,
    analyze_tcp_loss,
    broadcast_airtime_share,
    dispersion_cdf,
    estimate_interference,
    summarize,
    wired_coverage,
)
from repro.core.pipeline import JigsawPipeline
from repro.sim import ScenarioConfig, run_scenario


def main() -> None:
    config = ScenarioConfig.building(seed=7, duration_us=6_000_000)
    print("simulating a (compressed) day in the building...")
    artifacts = run_scenario(config)
    print("reconstructing with Jigsaw...")
    report = JigsawPipeline().run(
        artifacts.radio_traces, clock_groups=artifacts.clock_groups()
    )

    print("\n=== Table 1: trace summary ===")
    print(summarize(report, artifacts.radio_traces, config.duration_us).format_table())

    print("\n=== Figure 4: synchronization quality ===")
    print(dispersion_cdf(report.unification).format_table())

    print("\n=== Figure 6: coverage vs the wired trace ===")
    print(wired_coverage(artifacts.wired_trace, report.jframes).format_table())

    print("\n=== Figure 8: activity (compressed day, one bin per 'hour') ===")
    timeline = activity_timeline(
        report, config.duration_us, bin_us=config.duration_us // 24
    )
    print(timeline.format_table(max_rows=12))
    print("broadcast airtime share:", {
        f"ch{ch}": f"{100 * share:.1f}%"
        for ch, share in broadcast_airtime_share(report, config.duration_us).items()
    })

    print("\n=== Figure 9: co-channel interference ===")
    print(estimate_interference(report, min_packets=25).format_table())

    print("\n=== Figure 10: 802.11g protection ===")
    protection = analyze_protection(
        report,
        config.duration_us,
        bin_us=config.duration_us // 24,
        practical_timeout_us=max(
            config.duration_us // 24, 2 * config.client_rescan_interval_us
        ),
    )
    print(protection.format_table(max_rows=8))

    print("\n=== Figure 11: TCP loss decomposition ===")
    print(analyze_tcp_loss(report).format_table())


if __name__ == "__main__":
    main()
