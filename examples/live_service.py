"""Always-on service mode: live ingest, mid-run windows, crash recovery.

The batch pipeline answers "what happened in this trace" after the
trace ends.  Service mode answers it *while the trace is happening*:
radios push records into a live daemon, windowed analyses are published
as the emission watermark passes them, and the whole mid-merge state is
checkpointed so a crashed daemon resumes where it left off — with
results bit-identical to a run that never crashed.

This example drives a simulated association storm through the daemon,
kills it mid-trace (no flushing, no goodbye — the SIGKILL model),
restores from the last periodic checkpoint, and verifies the resumed
run's report against both an uninterrupted daemon and the batch
pipeline.

Run with::

    python examples/live_service.py
"""

from pathlib import Path
from tempfile import TemporaryDirectory

from repro.core import JigsawPipeline
from repro.service import JigsawDaemon
from repro.service.windows import WindowedLossPass, WindowedSummaryPass
from repro.sim.registry import scenario_config
from repro.sim.stream import live_feed, stream_scenario

WINDOW_US = 100_000
CHECKPOINT_EVERY = 2_000


def make_passes():
    return [WindowedSummaryPass(WINDOW_US), WindowedLossPass(WINDOW_US)]


def fingerprint(report):
    return [
        (jf.timestamp_us, jf.kind, jf.channel, jf.fcs)
        for jf in report.jframes
    ]


def main() -> None:
    config = scenario_config("flash_crowd", "tiny", seed=13)
    print(f"scenario: flash_crowd/tiny, {config.duration_us / 1e6:.1f}s "
          "of association-storm traffic\n")

    with TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "service.ckpt"

        # --- phase 1: serve live, then die mid-trace -----------------
        daemon = JigsawDaemon(
            live_feed(config),
            passes=make_passes(),
            checkpoint_path=checkpoint,
            checkpoint_every=CHECKPOINT_EVERY,
        )
        crashed = daemon.serve(stop_after_records=3 * CHECKPOINT_EVERY)
        assert crashed is None, "the daemon was supposed to crash"
        print(f"daemon killed after {daemon.total_consumed} records")
        print(f"  watermark at death: {daemon.watermark_us / 1e3:.0f} ms")
        print(f"  windows already published: {len(daemon.published_windows)}"
              " (live output — no finish() involved)")
        print(f"  checkpoints on disk: {daemon.checkpoints_written}")

        # --- phase 2: restore and run to end of stream ---------------
        restored = JigsawDaemon.restore(
            checkpoint, live_feed(config), checkpoint_every=CHECKPOINT_EVERY
        )
        print(f"\nrestored from {checkpoint.name} at "
              f"{restored.total_consumed} records; resuming...")
        svc = restored.serve()
        assert svc is not None and svc.resumed
        print(f"resumed run finished: {len(svc.report.jframes)} jframes, "
              f"{len(svc.published)} published windows")

        # --- phase 3: prove nothing was lost or invented -------------
        uninterrupted = JigsawDaemon(
            live_feed(config), passes=make_passes()
        ).serve()
        streamed = stream_scenario(config)
        batch = JigsawPipeline().run(
            streamed.traces, clock_groups=streamed.clock_groups()
        )
        assert fingerprint(svc.report) == fingerprint(uninterrupted.report)
        assert svc.report.unification.stats == batch.unification.stats
        assert [w.key for w in svc.published] == [
            w.key for w in uninterrupted.published
        ]
        print("\ncrash/resume parity: OK "
              "(jframes, stats and published windows all bit-identical "
              "to an uninterrupted run and to the batch pipeline)")

        losses = [
            w for w in svc.published
            if w.pass_name == "windowed_loss" and w.payload["exchanges"]
        ]
        print("\nper-window delivery (windowed_loss):")
        for w in losses[:5]:
            print(f"  [{w.start_us / 1e3:6.0f}, {w.end_us / 1e3:6.0f}) ms  "
                  f"exchanges={w.payload['exchanges']:4d}  "
                  f"delivered={w.payload['delivered']:4d}  "
                  f"retries={w.payload['retransmissions']:4d}")


if __name__ == "__main__":
    main()
