"""Quickstart: simulate a small deployment, run Jigsaw, print the results.

Run with::

    python examples/quickstart.py
"""

from repro.core import JigsawPipeline
from repro.sim import ScenarioConfig, run_scenario


def main() -> None:
    # 1. Simulate a two-floor deployment: 8 sensor pods (32 monitor radios),
    #    8 APs on channels 1/6/11, 12 clients running web/ssh/scp flows.
    config = ScenarioConfig.small(seed=7)
    print(f"simulating {config.duration_us / 1e6:.0f}s of 802.11b/g activity...")
    artifacts = run_scenario(config)
    print(
        f"  {len(artifacts.radio_traces)} radio traces, "
        f"{sum(len(t) for t in artifacts.radio_traces):,} capture records, "
        f"{len(artifacts.ground_truth):,} true transmissions"
    )

    # 2. Run the Jigsaw pipeline: bootstrap synchronization, unification,
    #    link-layer and transport-layer reconstruction.
    report = JigsawPipeline().run(
        artifacts.radio_traces, clock_groups=artifacts.clock_groups()
    )
    print("\n--- Jigsaw report ---")
    print(report.summary())

    # 3. Look at a few reconstructed TCP flows.
    print("\n--- sample flows ---")
    for flow in report.completed_flows()[:5]:
        rtt = flow.median_rtt_us
        rtt_text = f"{rtt / 1000:.1f} ms" if rtt else "n/a"
        print(
            f"  {flow.key}: {flow.n_segments} segments, "
            f"{flow.data_bytes_observed:,} data bytes, median RTT {rtt_text}, "
            f"{len(flow.loss_events)} losses"
        )

    # 4. And the synchronization quality (the paper's Figure 4).
    from repro.core.analysis import dispersion_cdf

    cdf = dispersion_cdf(report.unification)
    print(
        f"\nsync quality: p90 dispersion {cdf.p90_us:.1f} us, "
        f"p99 {cdf.p99_us:.1f} us (paper: <10 us / <20 us)"
    )

    # 5. The same analyses can tap the pipeline's one-pass loop directly —
    #    no materialized report lists, bounded memory for huge traces.
    #    (See examples/streaming_analyses.py for the full tour.)
    from repro.core.analysis import ActivityPass, DispersionPass

    duration = config.duration_us
    streaming = JigsawPipeline().run_streaming(
        artifacts.radio_traces,
        [DispersionPass(), ActivityPass(duration, bin_us=duration // 10)],
        clock_groups=artifacts.clock_groups(),
    )
    assert streaming.passes["dispersion"].samples_us == cdf.samples_us
    print(
        f"streaming passes: identical Figure 4 from a materialize=False run "
        f"(jframe list length: {len(streaming.jframes)})"
    )


if __name__ == "__main__":
    main()
