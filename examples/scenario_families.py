"""Tour the scenario registry: every family, tiny scale, streamed ingest.

Each registered workload family is simulated at tiny scale and fed to the
pipeline through the streaming sim->pipeline path (the same single-read
reader interface trace files use), then its family-specific signal is
printed: roam handoffs, hidden-terminal collisions, cross-channel probe
bursts, the flash-crowd wave.

Run with ``PYTHONPATH=src python examples/scenario_families.py``.
"""

from repro.core import JigsawPipeline
from repro.dot11.frame import FrameType
from repro.sim import REGISTRY
from repro.sim.stream import stream_scenario


def family_signal(name, artifacts, report):
    """One line of evidence that the family stressed what it should."""
    if name == "roaming":
        return f"{len(artifacts.roam_events)} AP handoffs"
    if name == "hidden_terminal":
        stats = report.unification.stats
        cts = sum(
            1
            for tx in artifacts.ground_truth
            if tx.frame.ftype is FrameType.CTS
        )
        return (
            f"{stats.corrupt_jframes + stats.phy_error_jframes} error "
            f"jframes, {cts} CTS-to-self"
        )
    if name == "scanning":
        channels = sorted(
            {
                tx.channel.number
                for tx in artifacts.ground_truth
                if tx.frame.ftype is FrameType.PROBE_REQUEST
            }
        )
        return f"broadcast probes on channels {channels}"
    if name == "flash_crowd":
        config = artifacts.config
        center = config.workload.flash_center
        width = config.workload.flash_width
        if not artifacts.flows:
            return "no flows (tiny run)"
        in_wave = sum(
            1
            for f in artifacts.flows
            if abs(f.start_us / config.duration_us - center) < 2 * width
        )
        return f"{in_wave}/{len(artifacts.flows)} flows inside the wave"
    return f"{len(artifacts.flows)} flows scheduled"


def main() -> None:
    print("registered scenario families:\n")
    for family in REGISTRY:
        config = family.config(scale="tiny", seed=7)
        streamed = stream_scenario(config)
        report = JigsawPipeline().run(
            streamed.traces, clock_groups=streamed.clock_groups()
        )
        artifacts = streamed.artifacts()
        stats = report.unification.stats
        print(f"=== {family.name} ===")
        print(f"    {family.paper_focus}")
        print(
            f"    {stats.records_in:,} records -> {stats.jframes:,} "
            f"jframes (streamed ingest), "
            f"{len(report.flows)} flows reconstructed"
        )
        print(f"    signal: {family_signal(family.name, artifacts, report)}")
        print()


if __name__ == "__main__":
    main()
