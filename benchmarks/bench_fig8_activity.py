"""Bench F8 — Figure 8: diurnal activity time series and traffic mix.

Paper: active clients follow a day curve with an overnight floor; beacon
traffic is constant while data is bursty; broadcast (ARP + beacons) burns
~10% of any monitor's channel airtime.
"""

from repro.experiments.fig8_activity import run_fig8


def test_fig8_activity_timeline(benchmark, building_run, capsys):
    result = benchmark.pedantic(
        run_fig8, args=(building_run,), rounds=2, iterations=1
    )
    with capsys.disabled():
        print("\n=== Figure 8: activity time series ===")
        print(result.timeline.format_table(max_rows=12))
        print("broadcast airtime share per channel (paper ~10%):")
        for channel, share in result.airtime_share.items():
            print(f"  ch{channel}: {100 * share:.1f}%")
    bins = result.timeline.bins
    assert len(bins) >= 12
    # Diurnal shape: the busiest bin clearly exceeds the quietest.
    assert result.busiest_over_quietest_clients() >= 1.5
    # Beacon traffic is roughly constant: no interior bin is empty.
    beacon = [b.beacon_bytes for b in bins[1:-1]]
    assert all(v > 0 for v in beacon)
    # Broadcasts consume a noticeable share of every monitored channel.
    assert all(share > 0.02 for share in result.airtime_share.values())
