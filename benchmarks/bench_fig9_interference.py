"""Bench F9 — Figure 9: interference loss rate across (s, r) pairs.

Paper: 88% of scored pairs experience interference loss; senders split
56%/44% between APs and clients; half the pairs sit at X <= 0.025 while
10% reach X >= 0.1 and 5% reach X >= 0.2.
"""

from repro.experiments.fig9_interference import run_fig9


def test_fig9_interference(benchmark, building_run, capsys):
    result = benchmark.pedantic(
        run_fig9, args=(building_run,), rounds=2, iterations=1
    )
    with capsys.disabled():
        print("\n=== Figure 9: interference loss rate ===")
        print(result.format_table())
    assert result.n_pairs >= 20
    # Most pairs see some interference; a heavy tail exists but is small.
    assert result.fraction_pairs_interfered() > 0.4     # paper: 0.88
    assert result.fraction_pairs_with_rate_at_least(0.1) < 0.5
    ap_share, client_share = result.sender_split()
    assert ap_share > 0.2 and client_share > 0.2        # both kinds interfere
