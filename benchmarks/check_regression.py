"""CI perf-regression gate over the ``BENCH_merge.json`` trajectory.

Compares throughput metrics measured by the bench smoke against the
committed baseline with a tolerance band: a metric below
``--fail-under`` (default 0.8x of baseline) fails the build, one below
``--warn-under`` (default 0.95x) only warns.  Wide tolerance is
deliberate — shared CI runners jitter by tens of percent, and the gate
exists to catch the silent 2x decode regression, not 3% noise.

Guarded metrics are *throughputs and speedups* (higher is better), so
the check is scale-free: a runner that is uniformly slow moves both
numerator and denominator of the recorded speedups and neither trips
the gate, while a real regression in one stage shifts the ratio.

Usage (what ``make bench-smoke`` and CI run)::

    python benchmarks/check_regression.py \
        --baseline BENCH_baseline.json --current BENCH_merge.json

Metrics missing from the baseline (e.g. a section added by the current
PR) are reported as a WARN — visible in the log, but not fatal, so
perf-section authors are not forced to hand-edit baselines to get CI
green.  Pass ``--require-sections`` (what the scheduled full run uses)
to turn an absent baseline section into a failure: on that path every
guarded metric is expected to have history, and a silently-skipped
section is exactly how a gate rots.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterator, Optional, Tuple

#: (dotted path into BENCH_merge.json, human label).  All are
#: higher-is-better ratios or rates.
GUARDED_METRICS: Tuple[Tuple[str, str], ...] = (
    ("full_fleet.records_per_second", "merge throughput (full fleet)"),
    ("decode.batched_records_per_second", "batched decode throughput"),
    ("decode.decode_speedup", "batched/scalar decode speedup"),
    ("decode.end_to_end_speedup", "batched/scalar end-to-end speedup"),
    ("bootstrap.prepass_speedup", "single-read prepass speedup"),
    ("hierarchy.records_per_second", "campus hierarchical merge throughput"),
    ("hierarchy.hierarchy_speedup", "merge tree vs flat-shard speedup"),
    ("hierarchy.realtime_factor", "campus real-time factor (512 radios)"),
    ("pool_scaling.best_records_per_second", "best pool-sweep throughput"),
)


def _lookup(payload: dict, dotted: str) -> Optional[float]:
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def iter_checks(
    baseline: dict, current: dict
) -> Iterator[Tuple[str, str, Optional[float], Optional[float]]]:
    for dotted, label in GUARDED_METRICS:
        yield dotted, label, _lookup(baseline, dotted), _lookup(current, dotted)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        required=True,
        help="committed BENCH_merge.json to compare against",
    )
    parser.add_argument(
        "--current",
        type=Path,
        required=True,
        help="BENCH_merge.json produced by this run's bench smoke",
    )
    parser.add_argument(
        "--fail-under",
        type=float,
        default=0.8,
        help="fail when current/baseline drops below this (default 0.8)",
    )
    parser.add_argument(
        "--warn-under",
        type=float,
        default=0.95,
        help="warn when current/baseline drops below this (default 0.95)",
    )
    parser.add_argument(
        "--require-sections",
        action="store_true",
        help=(
            "fail when a guarded metric has no baseline instead of "
            "warning (strict mode for runs that must have full history)"
        ),
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"regression gate: no baseline at {args.baseline}; skipping")
        return 0
    if not args.current.exists():
        print(f"regression gate: no current results at {args.current}")
        return 1
    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())

    failures = 0
    for dotted, label, base, cur in iter_checks(baseline, current):
        if base is None or base == 0:
            if args.require_sections:
                print(
                    f"  FAIL  {label} ({dotted}): no baseline "
                    "(--require-sections)"
                )
                failures += 1
            else:
                print(
                    f"  WARN  {label} ({dotted}): no baseline — "
                    "not gated; refresh the committed baseline"
                )
            continue
        if cur is None:
            print(f"  FAIL  {label} ({dotted}): missing from current run")
            failures += 1
            continue
        ratio = cur / base
        detail = f"{cur:,.2f} vs baseline {base:,.2f} ({ratio:.2f}x)"
        if ratio < args.fail_under:
            print(f"  FAIL  {label}: {detail} < {args.fail_under:.2f}x")
            failures += 1
        elif ratio < args.warn_under:
            print(f"  WARN  {label}: {detail} < {args.warn_under:.2f}x")
        else:
            print(f"  ok    {label}: {detail}")

    if failures:
        print(
            f"regression gate: {failures} metric(s) regressed more than "
            f"{(1 - args.fail_under) * 100:.0f}% against {args.baseline}"
        )
        return 1
    print("regression gate: within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
