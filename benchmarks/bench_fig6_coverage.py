"""Bench F6 — Figure 6: per-station coverage against the wired trace.

Paper: 97% of wired unicast packets appear in the wireless trace; APs are
covered better than clients (pods sit near APs); 78% of clients and 94% of
APs exceed 95% coverage.
"""

from repro.experiments.fig6_coverage import run_fig6


def test_fig6_wired_coverage(benchmark, building_run, capsys):
    result = benchmark.pedantic(
        run_fig6, args=(building_run,), rounds=2, iterations=1
    )
    with capsys.disabled():
        print("\n=== Figure 6: wired-trace coverage ===")
        print(result.format_table())
    assert result.overall() > 0.9            # paper: 0.97
    # APs covered at least as well as clients (pods deployed near APs).
    assert result.group_coverage(True) >= result.group_coverage(False)
    # A real client tail exists: not everyone is perfectly covered.
    assert result.fraction_of_stations_above(1.0, False) < 1.0
