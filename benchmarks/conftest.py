"""Shared benchmark fixtures.

One building-scale scenario (the paper's fleet: ~39 pods / 156 radios over
four floors) is simulated and reconstructed once per session; each
table/figure benchmark then times its analysis against that shared run and
prints the paper-vs-measured comparison.

``--scale`` selects the sweep size: ``small`` (the default, what
``make bench-smoke`` runs) keeps the scenario-family sweep at small scale
and the campus sweep at one 512-radio point; ``full`` (CI's multi-core
``pool-bench`` lane, and ``make bench-full``) runs full-scale families
and the 512/1024/1536-radio campus scaling curve.
"""

import pytest

from repro.experiments.common import (
    get_building_run,
    get_campus_run,
    get_small_run,
)


def pytest_addoption(parser):
    parser.addoption(
        "--scale",
        choices=("small", "full"),
        default="small",
        help=(
            "benchmark scale: 'full' runs full-scale scenario families "
            "and the 500-1500 radio campus sweep (CI's multi-core lane)"
        ),
    )


@pytest.fixture(scope="session")
def bench_scale(request):
    return request.config.getoption("--scale")


@pytest.fixture(scope="session")
def building_run():
    return get_building_run()


@pytest.fixture(scope="session")
def small_run():
    return get_small_run()


@pytest.fixture(scope="session")
def campus_run():
    """The 4-building (512-radio) campus the hierarchy benches share."""
    return get_campus_run()
