"""Shared benchmark fixtures.

One building-scale scenario (the paper's fleet: ~39 pods / 156 radios over
four floors) is simulated and reconstructed once per session; each
table/figure benchmark then times its analysis against that shared run and
prints the paper-vs-measured comparison.
"""

import pytest

from repro.experiments.common import get_building_run, get_small_run


@pytest.fixture(scope="session")
def building_run():
    return get_building_run()


@pytest.fixture(scope="session")
def small_run():
    return get_small_run()
