"""Bench F7 — Figure 7: coverage vs number of sensor pods.

Paper: AP coverage stays ~94% down to 20 pods while client coverage drops
92% -> 71% -> 68%; 10 pods partitions the synchronization bootstrap.
Each configuration reruns the full pipeline, so this is the slowest bench.
"""

from repro.experiments.fig7_pods import run_fig7


def test_fig7_pod_reduction(benchmark, building_run, capsys):
    result = benchmark.pedantic(
        run_fig7,
        args=(building_run,),
        kwargs={"pod_counts": (39, 30, 20, 10)},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print("\n=== Figure 7: coverage vs pod count ===")
        print(result.format_table())
    points = {p.n_pods: p for p in result.points}
    full = points[max(points)]
    reduced = points[20]
    sparse = points[10]
    # APs are covered at least as well as clients at every configuration
    # (pods and APs share the corridors), and reduction hurts clients.
    for point in result.points:
        assert point.ap_coverage >= point.client_coverage - 0.02
    assert reduced.ap_coverage > 0.8
    assert full.client_coverage - reduced.client_coverage > 0.1
    # Ten pods is not a viable deployment: in the paper the bootstrap
    # partitions; in our denser-channel-6 fleet the sync tree survives but
    # client coverage collapses instead.  Either failure mode must show.
    assert sparse.partitioned or sparse.client_coverage < 0.6
