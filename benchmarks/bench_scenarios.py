"""Bench S1 — the scenario-family sweep.

The merge must stay faster than the paper's event rate on *every*
registered workload family, not just the canonical building run — and
each family must actually produce the signal it exists to stress
(roam handoffs, hidden-terminal collisions, cross-channel probe bursts,
a flash-crowd wave).  Per-family merge throughput is persisted to
``BENCH_merge.json``'s ``scenario_sweep`` section so the validated
workload surface is tracked across PRs.

The sweep runs at small scale by default; ``--scale full`` (CI's
multi-core ``pool-bench`` lane, or ``make bench-full``) runs every
family at its full registered scale.
"""

import itertools
import json
from pathlib import Path

import pytest

from repro.dot11.frame import FrameType
from repro.experiments.scenarios import (
    get_family_run,
    run_family_sweep,
    sweep_as_section,
)
from repro.sim import REGISTRY

#: The paper's day-long trace: 2.7 B events over 86,400 seconds.
PAPER_EVENTS_PER_SECOND = 2_700_000_000 / 86_400

#: Where the cross-PR perf trajectory is recorded.
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_merge.json"


@pytest.fixture(scope="module")
def sweep_scale(bench_scale):
    """The registry scale every sweep test runs at (``--scale``)."""
    return bench_scale


def _update_results(**sections) -> None:
    """Merge sections into BENCH_merge.json (tests may run standalone)."""
    payload = {}
    if RESULTS_PATH.exists():
        payload = json.loads(RESULTS_PATH.read_text())
    payload.update(sections)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def test_family_sweep_merge_throughput(sweep_scale, capsys):
    """Every family's trace merges faster than the paper's event rate;
    the per-family numbers land in BENCH_merge.json."""
    points = run_family_sweep(scale=sweep_scale)
    with capsys.disabled():
        print("\n=== Scenario-family merge sweep ===")
        for point in points:
            merge = point.merge
            print(
                f"  {point.family:16s} {merge.records:>8,} records  "
                f"{merge.records_per_second:>10,.0f} rec/s  "
                f"({merge.realtime_factor:.2f}x real time)"
            )
    _update_results(scenario_sweep=sweep_as_section(points))
    assert {p.family for p in points} == set(REGISTRY.names())
    for point in points:
        assert point.merge.records > 0, point.family
        assert (
            point.merge.records_per_second > PAPER_EVENTS_PER_SECOND
        ), point.family


def test_roaming_family_produces_handoffs(sweep_scale, capsys):
    """Roamers actually hand off between APs, and the merge keeps group
    dispersion samples flowing under moving vantage points (Fig 4/6)."""
    from repro.core.analysis import dispersion_cdf

    run = get_family_run("roaming", scale=sweep_scale)
    assert run.artifacts.roam_events, "no AP handoffs in roaming family"
    distinct_roamers = {e.station_index for e in run.artifacts.roam_events}
    assert len(distinct_roamers) >= 2
    cdf = dispersion_cdf(run.report.unification)
    assert cdf.n > 100
    with capsys.disabled():
        print(
            f"\nroaming: {len(run.artifacts.roam_events)} handoffs by "
            f"{len(distinct_roamers)} clients, p99 dispersion "
            f"{cdf.p99_us:.1f} us"
        )


def test_hidden_terminal_family_collides(sweep_scale, capsys):
    """The hotspot produces concurrent co-channel transmissions from
    mutually-hidden senders, and protection engages (Fig 9/10)."""
    run = get_family_run("hidden_terminal", scale=sweep_scale)
    history = run.artifacts.ground_truth
    # Concurrent same-channel data transmissions from distinct senders —
    # the collisions carrier sense failed to prevent.
    overlaps = 0
    for a, b in itertools.pairwise(history):
        if (
            a.channel.number == b.channel.number
            and a.transmitter_id != b.transmitter_id
            and b.start_us < a.end_us
        ):
            overlaps += 1
    assert overlaps > 10, "hotspot produced no concurrent transmissions"
    # 802.11b clients in the clusters force CTS-to-self protection on.
    cts = sum(1 for tx in history if tx.frame.ftype is FrameType.CTS)
    assert cts > 0, "protection never engaged in the hotspot"
    stats = run.report.unification.stats
    assert stats.corrupt_jframes + stats.phy_error_jframes > 0
    with capsys.disabled():
        print(
            f"\nhidden_terminal: {overlaps} concurrent-tx events, "
            f"{cts} CTS-to-self, "
            f"{stats.corrupt_jframes + stats.phy_error_jframes} error jframes"
        )


def test_scanning_family_densifies_references(sweep_scale, capsys):
    """Sweeping clients land broadcast probes on every monitored channel —
    extra cross-radio reference anchors for bootstrap (Section 4.1)."""
    run = get_family_run("scanning", scale=sweep_scale)
    baseline = get_family_run("building", scale=sweep_scale)
    by_channel = {}
    for tx in run.artifacts.ground_truth:
        if tx.frame.ftype is FrameType.PROBE_REQUEST:
            by_channel[tx.channel.number] = (
                by_channel.get(tx.channel.number, 0) + 1
            )
    assert set(by_channel) == {1, 6, 11}, by_channel
    probes = sum(by_channel.values())
    baseline_probes = sum(
        1
        for tx in baseline.artifacts.ground_truth
        if tx.frame.ftype is FrameType.PROBE_REQUEST
    )
    assert probes > baseline_probes
    assert run.report.bootstrap.fully_synchronized
    with capsys.disabled():
        print(
            f"\nscanning: {probes} broadcast probes across channels "
            f"{sorted(by_channel)} (building baseline: {baseline_probes})"
        )


def test_flash_crowd_family_shows_wave(sweep_scale, capsys):
    """The arrival wave concentrates flow starts (and with them the
    activity timeline and TCP-loss burst) around the wave center."""
    run = get_family_run("flash_crowd", scale=sweep_scale)
    config = run.config
    flows = run.artifacts.flows
    assert flows
    center = config.workload.flash_center
    width = config.workload.flash_width
    in_wave = sum(
        1
        for f in flows
        if abs(f.start_us / config.duration_us - center) < 2 * width
    )
    wave_fraction = in_wave / len(flows)
    window_fraction = 4 * width
    assert wave_fraction > 2 * window_fraction, (
        f"only {wave_fraction:.0%} of flows in the wave window "
        f"({window_fraction:.0%} of the run)"
    )
    with capsys.disabled():
        print(
            f"\nflash_crowd: {len(flows)} flows, {wave_fraction:.0%} "
            f"inside the wave window ({window_fraction:.0%} of the run)"
        )
