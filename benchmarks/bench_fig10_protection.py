"""Bench F10 — Figure 10: overprotective APs and affected 11g clients.

Paper: with a practical one-minute in-range test, 25-50% of active 11g
clients sit on overprotective APs during busy periods; footnote 7 bounds
the forgone throughput at ~1.98x.
"""

from repro.dot11.rates import protection_overhead_factor
from repro.experiments.fig10_protection import run_fig10


def test_fig10_overprotective_aps(benchmark, building_run, capsys):
    result = benchmark.pedantic(
        run_fig10, args=(building_run,), rounds=2, iterations=1
    )
    with capsys.disabled():
        print("\n=== Figure 10: overprotective APs ===")
        print(result.format_table())
        print(
            f"footnote-7 overhead factor: {protection_overhead_factor():.2f}"
            " (paper: 1.98)"
        )
    assert result.b_clients, "scenario must contain 802.11b clients"
    assert result.g_clients, "scenario must contain 802.11g clients"
    # Protection appears, and some of it is unnecessary.
    assert any(b.protecting_aps for b in result.bins)
    assert result.total_overprotective_aps() >= 1
    assert result.peak_affected_fraction() > 0.0


def test_footnote7_math(benchmark):
    factor = benchmark(protection_overhead_factor)
    assert abs(factor - 1.98) / 1.98 < 0.05
