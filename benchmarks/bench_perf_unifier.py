"""Bench P1 — the Section 4 efficiency requirement.

"Trace merging should execute faster than real-time and scale well as a
function of the number of radios" — checked against both our compressed
trace (which is ~4x denser in events/second than the paper's day) and the
paper's own average event rate (2.7 B events / 24 h ~ 31 k events/s).

The merge runs through the sharded streaming engine
(:class:`repro.core.unify.ShardedUnifier`); a radios-scaling sweep over
fleet subsets is persisted to ``BENCH_merge.json`` at the repo root so
the perf trajectory is tracked across PRs.
"""

import json
import os
from pathlib import Path

from repro.experiments.perf import (
    DEFAULT_CAMPUS_BUILDINGS,
    run_bootstrap_performance,
    run_campus_radio_scaling,
    run_decode_performance,
    run_hierarchy_performance,
    run_memory_profile,
    run_merge_performance,
    run_pool_scaling,
    run_radio_scaling,
)

#: The paper's day-long trace: 2.7 B events over 86,400 seconds.
PAPER_EVENTS_PER_SECOND = 2_700_000_000 / 86_400

#: Where the cross-PR perf trajectory is recorded.
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_merge.json"


def _update_results(**sections) -> None:
    """Merge sections into BENCH_merge.json (tests may run standalone)."""
    payload = {}
    if RESULTS_PATH.exists():
        payload = json.loads(RESULTS_PATH.read_text())
    payload.update(sections)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def test_merge_faster_than_paper_realtime(benchmark, building_run, capsys):
    perf = benchmark.pedantic(
        run_merge_performance, args=(building_run,), rounds=1, iterations=1
    )
    paper_factor = perf.records_per_second / PAPER_EVENTS_PER_SECOND
    with capsys.disabled():
        print("\n=== Merge performance ===")
        print(perf.format_table())
        print(
            f"vs paper's event rate ({PAPER_EVENTS_PER_SECOND:,.0f}/s): "
            f"{paper_factor:.2f}x real time"
        )
    # Single pass, and faster than real time at the paper's event rate.
    assert paper_factor > 1.0


def test_batched_decode_beats_scalar(building_run, capsys):
    """The batch-vectorized ingest tentpole: chunked structured-array
    decode plus decode-ahead must beat the scalar per-record pipeline
    end to end on the building trace — with record- and jframe-identical
    output.

    Both legs run back to back in the same process on the same files
    (twice each, alternating, best-of recorded), so the persisted
    speedups are same-environment ratios (shared-runner absolute times
    jitter; ratios are what the regression gate guards).  The scalar leg
    (``vectorized=False, decode_ahead=0``) is the pre-batching pipeline,
    making ``end_to_end_speedup`` the measured gain over that baseline.

    Defined before the sweep/memory benchmarks on purpose: those runs
    leave the shared process holding a multi-GB materialized heap, and
    timing the allocation-heavy batched pipeline on top of it skews the
    end-to-end legs.
    """
    perf = run_decode_performance(building_run)
    with capsys.disabled():
        print("\n=== Decode: scalar vs batch-vectorized ingest ===")
        print(perf.format_table())
    _update_results(decode=perf.as_dict())
    assert perf.output_identical
    # The decode drain itself must be decisively vectorized.
    assert perf.decode_speedup > 2.0
    # The win must survive the full pipeline too.  The floor here is
    # Amdahl-bounded, not 1:1 with the drain speedup: scalar decode was
    # ~55% of the scalar pipeline, so even a free ingest caps the
    # end-to-end ratio near 2.2x on one core, and the irreducible cost
    # of materializing 1.5M Python record objects lands the practical
    # single-core ratio around 1.7x (decode-ahead recovers more on
    # multi-core hosts by overlapping the remaining ingest with the
    # merge).  The regression gate guards the measured value; this
    # assert is the hard floor below which batching stopped working.
    assert perf.end_to_end_speedup > 1.4


def test_merge_scales_with_radios(building_run, capsys):
    """The paper's scaling requirement: sweep fleet subsets, persist them."""
    points = run_radio_scaling(building_run)
    full = run_merge_performance(building_run)
    with capsys.disabled():
        print("\n=== Radio scaling sweep ===")
        for point in points:
            print(
                f"  {point.n_radios:4d} radios / {point.n_shards} shards: "
                f"{point.records_per_second:>10,.0f} rec/s  "
                f"({point.realtime_factor:.2f}x real time)"
            )
    memory = run_memory_profile(building_run)
    with capsys.disabled():
        print("\n=== Peak memory: materialized vs streaming passes ===")
        print(memory.format_table())
    _update_results(
        benchmark="merge_performance",
        paper_events_per_second=PAPER_EVENTS_PER_SECOND,
        full_fleet=full.as_dict(),
        radio_scaling=[p.as_dict() for p in points],
        memory=memory.as_dict(),
    )
    # Every sweep point must stay faster than the paper's event rate.
    for point in points:
        assert point.records_per_second > PAPER_EVENTS_PER_SECOND
    # The streaming-pass pipeline must peak measurably below the
    # materialized run on the same trace (the materialize=False win).
    assert memory.streaming_peak_bytes < memory.materialized_peak_bytes
    # Severing observation -> exchange back-references after transport
    # inference must shrink what a materialize=False run retains.
    assert memory.trimmed_retained_bytes < memory.untrimmed_retained_bytes


def test_bootstrap_prepass_single_read_beats_two_read(building_run, capsys):
    """The tentpole: channel-sharded collection fed by single-read ingest
    must reach bootstrap offsets far faster than the serial two-read
    prepass on the building trace — with bit-identical offsets.

    End-to-end (bootstrap + merge) both paths decode and merge the same
    records, so on a single core the totals sit at parity and the win is
    time-to-first-jframe; the totals are tracked and guarded against
    regression (the fused path must never *cost* the pipeline)."""
    perf = run_bootstrap_performance(building_run)
    with capsys.disabled():
        print("\n=== Bootstrap prepass: two-read vs single-read sharded ===")
        print(perf.format_table())
    _update_results(bootstrap=perf.as_dict())
    assert perf.offsets_identical
    # Time-to-offsets: the prefix-only decode must decisively beat
    # decode-everything (the margin is ~the trace/window length ratio).
    assert perf.single_read_prepass_seconds < perf.two_read_prepass_seconds / 2
    # Fusing ingest with collection must not cost the pipeline overall.
    # The two totals are back-to-back ~18 s wall-clock runs sitting at
    # parity (the fusion removes only the duplicate window scan; decode
    # and merge dominate and are shared), so this is a gross-regression
    # guard with headroom for shared-runner jitter, not a tight bound.
    assert perf.single_read_total_seconds < perf.two_read_total_seconds * 1.25


def test_campus_hierarchical_merge_and_pool_scaling(
    campus_run, bench_scale, capsys
):
    """Campus-scale hierarchical sharding: the 500+ radio story.

    Three sections land in ``BENCH_merge.json``:

    * ``hierarchy`` — the serial flat-shard coordinator vs the
      (building, channel) merge tree on the same 512-radio campus, with
      the tentpole's ratio (``hierarchy_speedup``) and the paper's
      real-time requirement held at 4x the fleet the paper measured;
    * ``pool_scaling`` — a worker-count sweep over the same merge, with
      the engine each request *resolved to* recorded (on a one-core
      host every row says serial, and should);
    * ``radio_scaling`` — extended past one building with campus points
      (512 radios at the default scale; ``--scale full`` adds the 1024-
      and 1536-radio points by slicing one 12-building simulation).

    The >= 2x pool-over-flat-serial acceptance bound is asserted only
    where a pool can exist: the multi-core ``pool-bench`` CI lane sets
    ``REPRO_REQUIRE_POOL_SPEEDUP=1``.  Defined last on purpose — the
    campus heap joins a process already holding the building run, and
    the earlier timing-sensitive legs should not run on top of both.
    """
    hierarchy = run_hierarchy_performance(campus_run)
    pool = run_pool_scaling(campus_run)
    buildings = DEFAULT_CAMPUS_BUILDINGS if bench_scale == "full" else (4,)
    campus_points = run_campus_radio_scaling(buildings)
    with capsys.disabled():
        print("\n=== Hierarchy: flat shards vs pod x channel tree ===")
        print(hierarchy.format_table())
        print("\n=== Pool scaling (worker-count sweep) ===")
        print(pool.format_table())
        print("\n=== Campus radio scaling ===")
        for point in campus_points:
            print(
                f"  {point.n_radios:4d} radios / {point.n_shards} leaves: "
                f"{point.records_per_second:>10,.0f} rec/s  "
                f"({point.realtime_factor:.2f}x real time)  [{point.engine}]"
            )
    # Extend the scaling curve rather than replace it: keep the
    # single-building sweep points, splice the campus tail in.
    payload = {}
    if RESULTS_PATH.exists():
        payload = json.loads(RESULTS_PATH.read_text())
    building_points = [
        p
        for p in payload.get("radio_scaling", [])
        if p.get("n_radios", 0) < 500
    ]
    _update_results(
        radio_scaling=building_points
        + [p.as_dict() for p in campus_points],
        hierarchy=hierarchy.as_dict(),
        pool_scaling=pool.as_dict(),
    )
    # Every execution plan merged the same campus: identical record and
    # jframe counts across the flat baseline, the tree, and every pool
    # width (bit-level identity is the parity suite's job).
    assert (
        hierarchy.flat.records
        == hierarchy.tree_serial.records
        == hierarchy.tree_auto.records
    )
    assert (
        hierarchy.flat.jframes
        == hierarchy.tree_serial.jframes
        == hierarchy.tree_auto.jframes
    )
    assert all(p.records == hierarchy.flat.records for p in pool.points)
    # The acceptance floor: faster than real time at 500+ radios, and
    # faster than the paper's day-long event rate at every campus size.
    assert campus_points[0].n_radios >= 500
    assert hierarchy.realtime_factor > 1.0
    for point in campus_points:
        assert point.records_per_second > PAPER_EVENTS_PER_SECOND
    if os.environ.get("REPRO_REQUIRE_POOL_SPEEDUP"):
        pooled = [p for p in pool.points if p.pool_workers > 0]
        assert pooled, "pool lane resolved every request to serial"
        best = max(p.records_per_second for p in pooled)
        assert best >= 2.0 * hierarchy.flat.records_per_second
