"""Bench P1 — the Section 4 efficiency requirement.

"Trace merging should execute faster than real-time and scale well as a
function of the number of radios" — checked against both our compressed
trace (which is ~4x denser in events/second than the paper's day) and the
paper's own average event rate (2.7 B events / 24 h ~ 31 k events/s).
"""

from repro.experiments.perf import run_merge_performance

#: The paper's day-long trace: 2.7 B events over 86,400 seconds.
PAPER_EVENTS_PER_SECOND = 2_700_000_000 / 86_400


def test_merge_faster_than_paper_realtime(benchmark, building_run, capsys):
    perf = benchmark.pedantic(
        run_merge_performance, args=(building_run,), rounds=1, iterations=1
    )
    paper_factor = perf.records_per_second / PAPER_EVENTS_PER_SECOND
    with capsys.disabled():
        print("\n=== Merge performance ===")
        print(perf.format_table())
        print(
            f"vs paper's event rate ({PAPER_EVENTS_PER_SECOND:,.0f}/s): "
            f"{paper_factor:.2f}x real time"
        )
    # Single pass, and faster than real time at the paper's event rate.
    assert paper_factor > 1.0
