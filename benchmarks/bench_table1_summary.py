"""Bench T1 — Table 1: trace summary characteristics."""

from repro.experiments.table1_summary import run_table1


def test_table1_summary(benchmark, building_run, capsys):
    summary = benchmark.pedantic(
        run_table1, args=(building_run,), rounds=2, iterations=1
    )
    with capsys.disabled():
        print("\n=== Table 1: trace summary ===")
        print(summary.format_table())
    # Paper shape: a large error-event share (47%) and multiple
    # observations of each transmission.
    assert 0.2 <= summary.error_event_fraction <= 0.7
    assert summary.events_per_jframe > 2.0
    assert summary.unique_aps > 0 and summary.unique_clients > 0
