"""Bench F4 — Figure 4: CDF of jframe group dispersion.

Paper: 90% of jframes < 10 us worst-case inter-radio offset; 99% < 20 us.
"""

from repro.experiments.fig4_dispersion import run_fig4


def test_fig4_dispersion_cdf(benchmark, building_run, capsys):
    cdf = benchmark.pedantic(
        run_fig4, args=(building_run,), rounds=3, iterations=1
    )
    with capsys.disabled():
        print("\n=== Figure 4: group dispersion CDF ===")
        print(cdf.format_table())
    assert cdf.n > 1000
    # The paper's headline numbers, with modest slack for the simulator.
    assert cdf.fraction_below(10.0) >= 0.85   # paper: 0.90
    assert cdf.fraction_below(20.0) >= 0.95   # paper: 0.99
