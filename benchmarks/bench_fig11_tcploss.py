"""Bench F11 — Figure 11: TCP loss decomposition.

Paper: across completed-handshake flows, "the wireless component of TCP
loss is dominant."
"""

from repro.experiments.fig11_tcploss import run_fig11


def test_fig11_tcp_loss_decomposition(benchmark, building_run, capsys):
    result = benchmark.pedantic(
        run_fig11, args=(building_run,), rounds=2, iterations=1
    )
    with capsys.disabled():
        print("\n=== Figure 11: TCP loss decomposition ===")
        print(result.format_table())
    assert result.n_flows >= 20
    wireless, wired, _ = result.aggregate_rates()
    assert wireless + wired > 0, "the trace must contain TCP losses"
    # The paper's headline claim.
    assert result.wireless_dominates()
