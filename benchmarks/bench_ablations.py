"""Ablation benches for the design choices DESIGN.md calls out.

Reruns unification on the same building traces with one knob changed each
time; checks the paper's qualitative arguments (resynchronization and skew
compensation are what keep a large fleet synchronized).
"""

from repro.experiments.ablations import run_ablations


def test_unifier_ablations(benchmark, building_run, capsys):
    result = benchmark.pedantic(
        run_ablations, args=(building_run,), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n=== Unifier ablations ===")
        print(result.format_table())
    baseline = result.by_label("baseline (paper settings)")
    never = result.by_label("never resync")
    no_skew = result.by_label("no skew compensation")

    # Continual resynchronization is what keeps dispersion tight:
    assert baseline.p90_us < never.p90_us
    # ...and its benefit survives even without proactive skew compensation,
    # but compensation must not make things worse.
    assert no_skew.p99_us >= baseline.p99_us or abs(
        no_skew.p99_us - baseline.p99_us
    ) < 5.0
    # Median vs mean timestamps: both viable; median no worse on p90.
    mean_ts = result.by_label("mean timestamp")
    assert baseline.p90_us <= mean_ts.p90_us + 2.0
